// The EXPLAIN surface: ParseStatement's EXPLAIN prefix, golden plan text
// (stable across engines, seeds, and repeated calls), strategy labels per
// mechanism, fingerprint semantics, and the JSON rendering.

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "engine/engine.h"

namespace ldp {
namespace {

Table SmallTable(uint64_t n = 2000, uint64_t seed = 77) {
  TableSpec spec;
  spec.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kUniform, 1.0});
  spec.dims.push_back(
      {"b", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kZipf, 1.1});
  spec.measures.push_back({"m", 0.0, 5.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, seed).ValueOrDie();
}

Table OneDimTable(uint64_t n = 2000) {
  TableSpec spec;
  spec.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 32, ColumnDist::kUniform, 1.0});
  spec.measures.push_back({"m", 0.0, 5.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, 78).ValueOrDie();
}

std::unique_ptr<AnalyticsEngine> MakeEngine(
    const Table& table, MechanismKind kind = MechanismKind::kHio,
    uint64_t seed = 42, bool consistency = false) {
  EngineOptions options;
  options.mechanism = kind;
  options.params.epsilon = 2.0;
  options.params.hash_pool_size = 256;
  options.seed = seed;
  options.planner_consistency = consistency;
  return AnalyticsEngine::Create(table, options).ValueOrDie();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string LineStartingWith(const std::string& text,
                             const std::string& prefix) {
  for (const auto& line : Lines(text)) {
    if (line.rfind(prefix, 0) == 0) return line;
  }
  return "";
}

TEST(ParseStatementTest, ExplainPrefixSetsFlag) {
  const Table table = SmallTable();
  const auto plain =
      ParseStatement(table.schema(), "SELECT COUNT(*) FROM T WHERE a <= 5")
          .ValueOrDie();
  EXPECT_FALSE(plain.explain);

  const auto explained =
      ParseStatement(table.schema(),
                     "EXPLAIN SELECT COUNT(*) FROM T WHERE a <= 5")
          .ValueOrDie();
  EXPECT_TRUE(explained.explain);
  EXPECT_EQ(explained.query.ToString(table.schema()),
            plain.query.ToString(table.schema()));

  // Keywords are case-insensitive, like the rest of the grammar.
  EXPECT_TRUE(ParseStatement(table.schema(),
                             "explain select count(*) from T where a <= 5")
                  .ValueOrDie()
                  .explain);

  // EXPLAIN with nothing to explain is an error, not an empty query.
  EXPECT_FALSE(ParseStatement(table.schema(), "EXPLAIN").ok());
}

TEST(ExplainTest, GoldenTextForSimpleCount) {
  const Table table = SmallTable();
  const auto engine = MakeEngine(table);
  const std::string text =
      engine->ExplainSql("EXPLAIN SELECT COUNT(*) FROM T WHERE a IN [2, 9]")
          .ValueOrDie();

  // The exact lines a COUNT over one range plans to: a single weight
  // materialization, one estimate per IE term, one compose.
  EXPECT_EQ(LineStartingWith(text, "mechanism:"), "mechanism: HIO");
  EXPECT_EQ(LineStartingWith(text, "strategy:"),
            "strategy: direct-level-grid");
  EXPECT_EQ(LineStartingWith(text, "components:"), "components: COUNT");
  EXPECT_EQ(LineStartingWith(text, "ie_terms:"), "ie_terms: 1");
  EXPECT_EQ(LineStartingWith(text, "query_dims:"), "query_dims: 1");
  EXPECT_EQ(LineStartingWith(text, "epoch:"),
            "epoch: " + std::to_string(engine->mechanism().num_reports()));
  EXPECT_EQ(LineStartingWith(text, "  0:"),
            "  0: ExactFilter component=COUNT key=\"0||\"");
  const std::string estimate_line = LineStartingWith(text, "  1:");
  EXPECT_EQ(estimate_line.rfind(
                "  1: NodeEstimate component=COUNT term=0 weights=0 deps=[0]",
                0),
            0u)
      << estimate_line;
  EXPECT_EQ(LineStartingWith(text, "  2:"), "  2: AggregateCompose deps=[1]");

  // The fingerprint renders as exactly 16 hex digits.
  const std::string fp = LineStartingWith(text, "fingerprint:");
  ASSERT_EQ(fp.size(), std::string("fingerprint: ").size() + 16);
  for (size_t i = std::string("fingerprint: ").size(); i < fp.size(); ++i) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(fp[i]))) << fp;
  }
}

TEST(ExplainTest, TextIsStableAcrossEnginesAndCalls) {
  const Table table = SmallTable();
  const Query query =
      ParseQuery(table.schema(),
                 "SELECT AVG(m) FROM T WHERE a IN [2, 9] OR b IN [4, 12]")
          .ValueOrDie();
  const auto e1 = MakeEngine(table);
  const auto e2 = MakeEngine(table);
  const std::string t1 = e1->Explain(query).ValueOrDie();
  EXPECT_EQ(t1, e1->Explain(query).ValueOrDie());  // repeat: identical
  EXPECT_EQ(t1, e2->Explain(query).ValueOrDie());  // fresh engine: identical
  // All three entry points agree.
  const char* sql = "SELECT AVG(m) FROM T WHERE a IN [2, 9] OR b IN [4, 12]";
  EXPECT_EQ(t1, e1->ExplainSql(sql).ValueOrDie());
  EXPECT_EQ(t1, e1->ExplainSql(std::string("EXPLAIN ") + sql).ValueOrDie());
}

TEST(ExplainTest, FingerprintIdentifiesPlanStructure) {
  const Table table = SmallTable();
  const Query q1 =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a <= 5")
          .ValueOrDie();
  const Query q2 =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a <= 6")
          .ValueOrDie();

  // Different collection seeds produce different reports but the same plan
  // structure: fingerprints match (epoch is excluded from the checksum).
  const auto e1 = MakeEngine(table, MechanismKind::kHio, /*seed=*/1);
  const auto e2 = MakeEngine(table, MechanismKind::kHio, /*seed=*/2);
  const auto p1 = e1->PlanFor(q1).ValueOrDie();
  const auto p2 = e2->PlanFor(q1).ValueOrDie();
  EXPECT_EQ(p1->fingerprint, p2->fingerprint);
  EXPECT_NE(p1->fingerprint, 0u);

  // A structurally different query gets a different fingerprint.
  const auto p3 = e1->PlanFor(q2).ValueOrDie();
  EXPECT_NE(p1->fingerprint, p3->fingerprint);
}

TEST(ExplainTest, StrategyLabelsFollowTheMechanism) {
  const Table table = SmallTable();
  const Query query =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a <= 5")
          .ValueOrDie();
  EXPECT_EQ(LineStartingWith(
                MakeEngine(table, MechanismKind::kMg)->Explain(query)
                    .ValueOrDie(),
                "strategy:"),
            "strategy: mg-cell-stream");
  EXPECT_EQ(LineStartingWith(
                MakeEngine(table, MechanismKind::kSc)->Explain(query)
                    .ValueOrDie(),
                "strategy:"),
            "strategy: sc-dual-path");
  EXPECT_EQ(LineStartingWith(
                MakeEngine(table, MechanismKind::kHi)->Explain(query)
                    .ValueOrDie(),
                "strategy:"),
            "strategy: direct-level-grid");
}

TEST(ExplainTest, NewMechanismStrategyLabels) {
  const Table table = SmallTable();
  const Query query =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a <= 5")
          .ValueOrDie();
  EXPECT_EQ(LineStartingWith(
                MakeEngine(table, MechanismKind::kHdg)->Explain(query)
                    .ValueOrDie(),
                "strategy:"),
            "strategy: hdg-grid-combine");
  EXPECT_EQ(LineStartingWith(
                MakeEngine(table, MechanismKind::kCalm)->Explain(query)
                    .ValueOrDie(),
                "strategy:"),
            "strategy: calm-marginal-combine");
}

std::unique_ptr<AnalyticsEngine> MakeMultiEngine(
    const Table& table, std::vector<MechanismKind> kinds) {
  EngineOptions options;
  options.mechanisms = std::move(kinds);
  options.params.epsilon = 2.0;
  options.params.hash_pool_size = 256;
  return AnalyticsEngine::Create(table, options).ValueOrDie();
}

TEST(ExplainTest, MultiMechanismSurfacesCandidateScores) {
  // EXPLAIN is the proof that the mechanism choice is cost-model driven: the
  // chosen mechanism appears alongside every rejected candidate's variance
  // score, in registration order.
  const Table table = SmallTable();
  const auto engine =
      MakeMultiEngine(table, {MechanismKind::kHio, MechanismKind::kHdg});
  const std::string text =
      engine->ExplainSql("SELECT COUNT(*) FROM T WHERE a IN [2, 9]")
          .ValueOrDie();

  const std::string mech_line = LineStartingWith(text, "mechanism:");
  const std::string cand_line = LineStartingWith(text, "candidates:");
  ASSERT_FALSE(cand_line.empty()) << text;
  // Both registered kinds are scored, and the chosen one is among them.
  EXPECT_NE(cand_line.find(" HIO="), std::string::npos) << cand_line;
  EXPECT_NE(cand_line.find(" HDG="), std::string::npos) << cand_line;
  ASSERT_GT(mech_line.size(), std::string("mechanism: ").size());
  EXPECT_NE(cand_line.find(mech_line.substr(std::string("mechanism: ").size())),
            std::string::npos);

  // The rendering is stable and the JSON mirror carries the same scores.
  EXPECT_EQ(text,
            engine->ExplainSql("SELECT COUNT(*) FROM T WHERE a IN [2, 9]")
                .ValueOrDie());
  const Query query =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a IN [2, 9]")
          .ValueOrDie();
  const auto plan = engine->PlanFor(query).ValueOrDie();
  ASSERT_EQ(plan->candidates.size(), 2u);
  const std::string json = plan->ToJson(table.schema());
  EXPECT_NE(json.find("\"candidates\":[{\"mechanism\":\"HIO\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"mechanism\":\"HDG\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"feasible\":"), std::string::npos);
  EXPECT_NE(json.find("\"variance\":"), std::string::npos);
}

TEST(ExplainTest, SingleMechanismHasNoCandidatesLine) {
  // The forced choice is not rendered as a candidate list, so
  // single-mechanism goldens and fingerprints are unchanged by the
  // multi-mechanism feature.
  const Table table = SmallTable();
  const std::string text =
      MakeEngine(table)
          ->ExplainSql("SELECT COUNT(*) FROM T WHERE a IN [2, 9]")
          .ValueOrDie();
  EXPECT_EQ(LineStartingWith(text, "candidates:"), "");
  const std::string json =
      MakeEngine(table)
          ->PlanFor(ParseQuery(table.schema(),
                               "SELECT COUNT(*) FROM T WHERE a IN [2, 9]")
                        .ValueOrDie())
          .ValueOrDie()
          ->ToJson(table.schema());
  EXPECT_EQ(json.find("\"candidates\""), std::string::npos);
}

TEST(ExplainTest, ConsistencyStrategyIsOptInAndGated) {
  const Table one_dim = OneDimTable();
  const Query query =
      ParseQuery(one_dim.schema(), "SELECT COUNT(*) FROM T WHERE a IN [4, 19]")
          .ValueOrDie();

  // Default: never consistent, even where it would qualify.
  const auto plain = MakeEngine(one_dim)->PlanFor(query).ValueOrDie();
  EXPECT_FALSE(plain->use_consistency);
  EXPECT_EQ(plain->strategy, PlanStrategy::kDirectLevelGrid);

  // Opted in on a qualifying deployment (HIO, one ordinal dim).
  const auto consistent =
      MakeEngine(one_dim, MechanismKind::kHio, 42, /*consistency=*/true)
          ->PlanFor(query)
          .ValueOrDie();
  EXPECT_TRUE(consistent->use_consistency);
  EXPECT_EQ(consistent->strategy, PlanStrategy::kConsistentTree);

  // Opted in on a non-qualifying deployment (two sensitive dims): gated off.
  const Table multi = SmallTable();
  const Query mq =
      ParseQuery(multi.schema(), "SELECT COUNT(*) FROM T WHERE a <= 5")
          .ValueOrDie();
  const auto gated =
      MakeEngine(multi, MechanismKind::kHio, 42, /*consistency=*/true)
          ->PlanFor(mq)
          .ValueOrDie();
  EXPECT_FALSE(gated->use_consistency);
  EXPECT_EQ(gated->strategy, PlanStrategy::kDirectLevelGrid);
}

TEST(ExplainTest, JsonRenderingIsWellFormedAndConsistent) {
  const Table table = SmallTable();
  const auto engine = MakeEngine(table);
  const Query query =
      ParseQuery(table.schema(), "SELECT STDEV(m) FROM T WHERE a IN [2, 9]")
          .ValueOrDie();
  const auto plan = engine->PlanFor(query).ValueOrDie();
  const std::string json = plan->ToJson(table.schema());
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"strategy\":\"direct-level-grid\""), std::string::npos);
  EXPECT_NE(json.find("\"components\":[\"SUMSQ\",\"SUM\",\"COUNT\"]"),
            std::string::npos);
  int depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace ldp
