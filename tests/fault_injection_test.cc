// Fault-injection sweep over the full client → channel → server → query
// pipeline: at every point of a drop/dup/corrupt (+ reorder/truncate) grid
// the COUNT estimate must stay unbiased w.r.t. the *accepted* cohort, with
// error bounded against the zero-fault baseline; at 100% corruption the
// server must answer with a typed error, never a crash or NaN.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "data/generator.h"
#include "engine/protocol.h"
#include "engine/transport.h"

namespace ldp {
namespace {

constexpr uint64_t kUsers = 100000;

// One population shared by every sweep point (generation dominates setup).
const Table& Population() {
  static const Table* table = new Table(MakeIpums8D(kUsers, 54, /*seed=*/31));
  return *table;
}

void DeliverAll(FaultyChannel* channel, CollectionServer* server) {
  for (const auto& d : channel->Drain()) {
    // Non-OK outcomes are the server quarantining bad frames — expected.
    (void)server->Ingest(d.bytes, d.user);
  }
}

struct PipelineOutcome {
  double estimate = 0.0;
  double truth_accepted = 0.0;   // COUNT over users actually aggregated
  double sigma_bound = 0.0;      // sqrt(VarianceBound) of the estimator
  IngestStats ingest;
  ChannelStats channel;
  TransportClient::Stats client;
};

// Runs the whole deployment loop: encode every user, push the frame through
// the faulty channel with retries, drain into the server in waves (so
// deliveries interleave with sends), then answer one COUNT box query.
PipelineOutcome RunPipeline(const FaultRates& rates, uint64_t seed) {
  const Table& pop = Population();
  const Schema& schema = pop.schema();
  MechanismParams params;
  params.epsilon = 5.0;
  const CollectionSpec spec =
      CollectionSpec::FromSchema(schema, MechanismKind::kHio, params);
  LdpClient client =
      LdpClient::Create(CollectionSpec::Parse(spec.Serialize()).ValueOrDie())
          .ValueOrDie();
  CollectionServer server = CollectionServer::Create(spec).ValueOrDie();

  FaultyChannel channel = FaultyChannel::Create(rates, seed).ValueOrDie();
  SimulatedClock clock;
  TransportClient transport(&channel, &clock, RetryPolicy{}, seed + 1);

  Rng rng(seed + 2);
  const auto& dims = schema.sensitive_dims();
  std::vector<uint32_t> values(dims.size());
  for (uint64_t u = 0; u < pop.num_rows(); ++u) {
    for (size_t i = 0; i < dims.size(); ++i) {
      values[i] = pop.DimValue(dims[i], u);
    }
    const std::string frame = client.EncodeUser(values, rng).ValueOrDie();
    transport.SendWithRetry(u, frame);
    if ((u & 0xfff) == 0) DeliverAll(&channel, &server);
  }
  DeliverAll(&channel, &server);

  std::vector<Interval> ranges;
  for (const int attr : dims) {
    ranges.push_back(Interval{0, schema.attribute(attr).domain_size - 1});
  }
  ranges[0] = {10, 35};  // age band — the harness's COUNT query

  PipelineOutcome out;
  out.ingest = server.ingest_stats();
  out.channel = channel.stats();
  out.client = transport.stats();
  const WeightVector weights = WeightVector::Ones(kUsers);
  out.estimate = server.EstimateBox(ranges, weights).ValueOrDie();
  out.sigma_bound =
      std::sqrt(server.mechanism().VarianceBound(ranges, weights).ValueOrDie());
  for (uint64_t u = 0; u < pop.num_rows(); ++u) {
    if (server.has_report(u) && ranges[0].Contains(pop.DimValue(dims[0], u))) {
      out.truth_accepted += 1.0;
    }
  }
  return out;
}

TEST(FaultInjectionSweep, BoundedDegradationAcrossFaultGrid) {
  const PipelineOutcome base = RunPipeline(FaultRates{}, /*seed=*/101);
  EXPECT_EQ(base.ingest.accepted, kUsers);
  EXPECT_EQ(base.ingest.quarantined(), 0u);
  const double baseline_err = std::abs(base.estimate - base.truth_accepted);
  // The estimator's own LDP noise floor; |err| is one draw from it, so the
  // degradation bound compares against max(baseline, bound) to keep the
  // sweep deterministic-yet-meaningful across fault mixes.
  const double floor = std::max(baseline_err, base.sigma_bound);

  struct Point {
    const char* name;
    FaultRates rates;
  };
  const Point grid[] = {
      {"drop5", {.drop = 0.05}},
      {"drop10", {.drop = 0.10}},
      {"dup10", {.dup = 0.10}},
      {"corrupt10", {.corrupt = 0.10}},
      {"mixed10", {.drop = 0.10, .dup = 0.10, .reorder = 0.10,
                   .truncate = 0.05, .corrupt = 0.10}},
  };
  uint64_t seed = 202;
  for (const Point& p : grid) {
    SCOPED_TRACE(p.name);
    const PipelineOutcome got = RunPipeline(p.rates, seed++);
    // Estimates stay unbiased w.r.t. the accepted cohort: error bounded by
    // 2x the zero-fault floor even as up to ~30% of traffic misbehaves.
    const double err = std::abs(got.estimate - got.truth_accepted);
    EXPECT_LE(err, 2.0 * floor)
        << "estimate " << got.estimate << " vs accepted truth "
        << got.truth_accepted;
    // Dedup held: the mechanism ingested at most one report per user.
    EXPECT_EQ(got.ingest.accepted, got.ingest.total() - got.ingest.duplicate -
                                       got.ingest.quarantined());
    EXPECT_LE(got.ingest.accepted, kUsers);
    if (p.rates.dup > 0.0 || p.rates.drop > 0.0) {
      EXPECT_GT(got.ingest.duplicate, 0u) << "expected retry/dup echoes";
    }
    if (p.rates.corrupt > 0.0 || p.rates.truncate > 0.0) {
      EXPECT_GT(got.ingest.corrupt, 0u);
    }
    // Retries keep dropout mild: even the worst mix retains 80%+ of users.
    EXPECT_GE(got.ingest.accepted, kUsers * 8 / 10);
  }
}

TEST(FaultInjectionSweep, TotalCorruptionYieldsTypedErrorNotNan) {
  Schema schema;
  ASSERT_TRUE(schema.AddOrdinal("age", 54).ok());
  ASSERT_TRUE(schema.AddCategorical("state", 6).ok());
  MechanismParams params;
  params.epsilon = 2.0;
  const CollectionSpec spec =
      CollectionSpec::FromSchema(schema, MechanismKind::kHio, params);
  LdpClient client = LdpClient::Create(spec).ValueOrDie();
  CollectionServer server = CollectionServer::Create(spec).ValueOrDie();

  FaultRates rates;
  rates.corrupt = 1.0;
  FaultyChannel channel = FaultyChannel::Create(rates, 5).ValueOrDie();
  SimulatedClock clock;
  TransportClient transport(&channel, &clock, RetryPolicy{}, 6);

  Rng rng(7);
  const uint64_t n = 500;
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(rng.UniformInt(54)),
        static_cast<uint32_t>(rng.UniformInt(6))};
    transport.SendWithRetry(u, client.EncodeUser(values, rng).ValueOrDie());
  }
  uint64_t non_ok = 0;
  for (const auto& d : channel.Drain()) {
    const uint64_t quarantined_before = server.ingest_stats().quarantined();
    const Status st = server.Ingest(d.bytes, d.user);
    EXPECT_FALSE(st.ok());
    // Every corruption case lands in quarantine, one count per frame.
    EXPECT_EQ(server.ingest_stats().quarantined(), quarantined_before + 1);
    ++non_ok;
  }
  EXPECT_GT(non_ok, 0u);
  EXPECT_EQ(server.num_reports(), 0u);
  EXPECT_EQ(server.ingest_stats().accepted, 0u);

  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{10, 35}, {0, 5}};
  const auto est = server.EstimateBox(ranges, w);
  ASSERT_FALSE(est.ok());
  EXPECT_EQ(est.status().code(), StatusCode::kFailedPrecondition);
  const auto pop_est = server.EstimateBoxForPopulation(ranges, w, n);
  EXPECT_FALSE(pop_est.ok());
}

TEST(FaultInjectionSweep, PopulationExtrapolationCorrectsDropout) {
  const PipelineOutcome got = RunPipeline(FaultRates{.drop = 0.10},
                                          /*seed=*/404);
  ASSERT_GT(got.ingest.accepted, 0u);
  // The accepted-cohort estimate scaled by N/accepted approximates the
  // population-level truth (dropout here is independent of values).
  const double scale = static_cast<double>(kUsers) /
                       static_cast<double>(got.ingest.accepted);
  const Table& pop = Population();
  const auto& dims = pop.schema().sensitive_dims();
  double truth_population = 0.0;
  for (uint64_t u = 0; u < pop.num_rows(); ++u) {
    const uint32_t age = pop.DimValue(dims[0], u);
    if (age >= 10 && age <= 35) truth_population += 1.0;
  }
  const double extrapolated = got.estimate * scale;
  EXPECT_NEAR(extrapolated, truth_population,
              2.0 * scale * std::max(got.sigma_bound, 1.0) +
                  0.02 * truth_population);
}

}  // namespace
}  // namespace ldp
