#include "common/flags.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

struct Fixture {
  int64_t n = 100;
  double eps = 1.5;
  std::string name = "default";
  bool full = false;
  FlagParser parser{"test", "test flags"};

  Fixture() {
    parser.AddInt64("n", &n, "count");
    parser.AddDouble("eps", &eps, "epsilon");
    parser.AddString("name", &name, "a name");
    parser.AddBool("full", &full, "paper scale");
  }
};

TEST(FlagsTest, EqualsSyntax) {
  Fixture f;
  ASSERT_TRUE(f.parser.ParseOrError({"--n=250", "--eps=2.5", "--name=abc"}).ok());
  EXPECT_EQ(f.n, 250);
  EXPECT_DOUBLE_EQ(f.eps, 2.5);
  EXPECT_EQ(f.name, "abc");
}

TEST(FlagsTest, SpaceSyntax) {
  Fixture f;
  ASSERT_TRUE(f.parser.ParseOrError({"--n", "7", "--name", "xy"}).ok());
  EXPECT_EQ(f.n, 7);
  EXPECT_EQ(f.name, "xy");
}

TEST(FlagsTest, BareBooleanIsTrue) {
  Fixture f;
  ASSERT_TRUE(f.parser.ParseOrError({"--full"}).ok());
  EXPECT_TRUE(f.full);
}

TEST(FlagsTest, BooleanExplicitValues) {
  Fixture f;
  ASSERT_TRUE(f.parser.ParseOrError({"--full=false"}).ok());
  EXPECT_FALSE(f.full);
  ASSERT_TRUE(f.parser.ParseOrError({"--full", "true"}).ok());
  EXPECT_TRUE(f.full);
}

TEST(FlagsTest, UnknownFlagFails) {
  Fixture f;
  const Status st = f.parser.ParseOrError({"--bogus=1"});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(FlagsTest, MissingValueFails) {
  Fixture f;
  EXPECT_FALSE(f.parser.ParseOrError({"--n"}).ok());
}

TEST(FlagsTest, BadNumberFails) {
  Fixture f;
  EXPECT_FALSE(f.parser.ParseOrError({"--n=abc"}).ok());
  EXPECT_FALSE(f.parser.ParseOrError({"--eps=zz"}).ok());
  EXPECT_FALSE(f.parser.ParseOrError({"--full=maybe"}).ok());
}

TEST(FlagsTest, PositionalArgumentFails) {
  Fixture f;
  EXPECT_FALSE(f.parser.ParseOrError({"positional"}).ok());
}

TEST(FlagsTest, UsageMentionsFlagsAndDefaults) {
  Fixture f;
  const std::string usage = f.parser.Usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("100"), std::string::npos);
  EXPECT_NE(usage.find("epsilon"), std::string::npos);
}

}  // namespace
}  // namespace ldp
