// Cross-validation across frequency oracles: on identical data, OLH, GRR,
// OUE and Hadamard response must all estimate the same quantities (they are
// interchangeable building blocks), and their relative accuracies must rank
// the way their variance formulas say.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "fo/frequency_oracle.h"

namespace ldp {
namespace {

struct FoRun {
  double mean = 0.0;
  double mse = 0.0;
};

FoRun RunOracle(FoKind kind, double eps, uint64_t domain, uint64_t n,
          uint64_t true_count, int runs, uint64_t seed) {
  auto oracle = FrequencyOracle::Create(kind, eps, domain).ValueOrDie();
  Rng rng(seed);
  const WeightVector w = WeightVector::Ones(n);
  FoRun out;
  for (int run = 0; run < runs; ++run) {
    auto acc = oracle->MakeAccumulator();
    for (uint64_t u = 0; u < n; ++u) {
      // true value 3; everything else spread over the rest of the domain.
      uint64_t v = u < true_count ? 3 : 4 + (u % (domain - 4));
      acc->Add(oracle->Encode(v, rng), u);
    }
    const double est = acc->EstimateWeighted(3, w);
    out.mean += est;
    const double err = est - static_cast<double>(true_count);
    out.mse += err * err;
  }
  out.mean /= runs;
  out.mse /= runs;
  return out;
}

TEST(FoCrossValidationTest, AllOraclesAgreeOnTheMean) {
  const double eps = 1.0;
  const uint64_t domain = 32;
  const uint64_t n = 2000;
  const uint64_t truth = 400;
  const int runs = 80;
  for (const FoKind kind :
       {FoKind::kOlh, FoKind::kGrr, FoKind::kOue, FoKind::kHr}) {
    const FoRun r = RunOracle(kind, eps, domain, n, truth, runs, 555);
    // All unbiased: mean within 4 standard errors (using each oracle's own
    // empirical MSE as the variance proxy).
    EXPECT_NEAR(r.mean, static_cast<double>(truth),
                4.0 * std::sqrt(r.mse / runs))
        << FoKindName(kind);
  }
}

TEST(FoCrossValidationTest, AccuracyRanking) {
  // At eps = 1 on a 32-value domain: OLH and OUE are asymptotically optimal
  // and nearly tied; HR trails by a small constant; GRR pays the full domain
  // size (m >> 3 e^eps + 2 here).
  const double eps = 1.0;
  const uint64_t domain = 32;
  const uint64_t n = 2000;
  const uint64_t truth = 400;
  const int runs = 120;
  std::map<FoKind, double> mse;
  for (const FoKind kind :
       {FoKind::kOlh, FoKind::kGrr, FoKind::kOue, FoKind::kHr}) {
    mse[kind] = RunOracle(kind, eps, domain, n, truth, runs, 777).mse;
  }
  EXPECT_LT(mse[FoKind::kOlh], mse[FoKind::kGrr]);
  EXPECT_LT(mse[FoKind::kOue], mse[FoKind::kGrr]);
  EXPECT_LT(mse[FoKind::kHr], mse[FoKind::kGrr]);
  // OLH and OUE within 2x of each other.
  EXPECT_LT(mse[FoKind::kOlh], mse[FoKind::kOue] * 2.0);
  EXPECT_LT(mse[FoKind::kOue], mse[FoKind::kOlh] * 2.0);
}

TEST(FoCrossValidationTest, AdaptiveMatchesItsTarget) {
  // On a small domain the adaptive oracle IS GRR; their estimates under the
  // same rng stream coincide distributionally.
  const double eps = 2.0;
  const FoRun adaptive = RunOracle(FoKind::kAdaptive, eps, 8, 2000, 500, 60, 888);
  const FoRun grr = RunOracle(FoKind::kGrr, eps, 8, 2000, 500, 60, 888);
  EXPECT_NEAR(adaptive.mean, grr.mean, 1e-9);  // identical streams
  EXPECT_NEAR(adaptive.mse, grr.mse, 1e-9);
}

}  // namespace
}  // namespace ldp
