#include "data/generator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(GenerateTableTest, ShapesAndDeterminism) {
  TableSpec spec;
  spec.dims.push_back({"a", AttributeKind::kSensitiveOrdinal, 16,
                       ColumnDist::kUniform, 1.0});
  spec.dims.push_back({"b", AttributeKind::kSensitiveCategorical, 4,
                       ColumnDist::kZipf, 1.2});
  spec.measures.push_back({"m", 0.0, 10.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  const Table t1 = GenerateTable(spec, 500, 99).ValueOrDie();
  const Table t2 = GenerateTable(spec, 500, 99).ValueOrDie();
  EXPECT_EQ(t1.num_rows(), 500u);
  EXPECT_EQ(t1.schema().num_attributes(), 3);
  for (uint64_t r = 0; r < 500; ++r) {
    EXPECT_EQ(t1.DimValue(0, r), t2.DimValue(0, r));
    EXPECT_DOUBLE_EQ(t1.MeasureValue(2, r), t2.MeasureValue(2, r));
    EXPECT_LT(t1.DimValue(0, r), 16u);
    EXPECT_LT(t1.DimValue(1, r), 4u);
    EXPECT_GE(t1.MeasureValue(2, r), 0.0);
    EXPECT_LE(t1.MeasureValue(2, r), 10.0);
  }
}

TEST(GenerateTableTest, DifferentSeedsDiffer) {
  TableSpec spec;
  spec.dims.push_back({"a", AttributeKind::kSensitiveOrdinal, 1024,
                       ColumnDist::kUniform, 1.0});
  const Table t1 = GenerateTable(spec, 100, 1).ValueOrDie();
  const Table t2 = GenerateTable(spec, 100, 2).ValueOrDie();
  int same = 0;
  for (uint64_t r = 0; r < 100; ++r) same += (t1.DimValue(0, r) == t2.DimValue(0, r));
  EXPECT_LT(same, 10);
}

TEST(GenerateTableTest, ValidatesSpec) {
  TableSpec bad_dim;
  bad_dim.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 0, ColumnDist::kUniform, 1.0});
  EXPECT_FALSE(GenerateTable(bad_dim, 10, 1).ok());

  TableSpec bad_measure;
  bad_measure.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 4, ColumnDist::kUniform, 1.0});
  bad_measure.measures.push_back(
      {"m", 5.0, 1.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  EXPECT_FALSE(GenerateTable(bad_measure, 10, 1).ok());

  TableSpec bad_corr;
  bad_corr.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 4, ColumnDist::kUniform, 1.0});
  bad_corr.measures.push_back(
      {"m", 0.0, 1.0, ColumnDist::kUniform, 1.0, 5, 0.5});
  EXPECT_FALSE(GenerateTable(bad_corr, 10, 1).ok());
}

TEST(GenerateTableTest, GaussianBellConcentratesInMiddle) {
  TableSpec spec;
  spec.dims.push_back({"a", AttributeKind::kSensitiveOrdinal, 100,
                       ColumnDist::kGaussianBell, 1.0});
  const Table t = GenerateTable(spec, 20000, 5).ValueOrDie();
  uint64_t middle = 0;
  for (uint64_t r = 0; r < t.num_rows(); ++r) {
    const uint32_t v = t.DimValue(0, r);
    if (v >= 25 && v < 75) ++middle;
  }
  // The middle half is +-1.5 sigma for sigma = m/6 -> ~86.6% of mass.
  EXPECT_GT(static_cast<double>(middle) / t.num_rows(), 0.80);
}

TEST(GenerateTableTest, ZipfSkewsTowardZero) {
  TableSpec spec;
  spec.dims.push_back({"a", AttributeKind::kSensitiveOrdinal, 100,
                       ColumnDist::kZipf, 1.3});
  const Table t = GenerateTable(spec, 20000, 5).ValueOrDie();
  std::vector<int> counts(100, 0);
  for (uint64_t r = 0; r < t.num_rows(); ++r) ++counts[t.DimValue(0, r)];
  EXPECT_GT(counts[0], counts[50] * 3);
}

TEST(GenerateTableTest, CorrelatedMeasureTracksDimension) {
  TableSpec spec;
  spec.dims.push_back({"a", AttributeKind::kSensitiveOrdinal, 100,
                       ColumnDist::kUniform, 1.0});
  spec.measures.push_back(
      {"m", 0.0, 100.0, ColumnDist::kUniform, 1.0, 0, 0.9});
  const Table t = GenerateTable(spec, 10000, 5).ValueOrDie();
  // Pearson correlation between dim value and measure should be strong.
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double syy = 0;
  double sxy = 0;
  const double n = static_cast<double>(t.num_rows());
  for (uint64_t r = 0; r < t.num_rows(); ++r) {
    const double x = t.DimValue(0, r);
    const double y = t.MeasureValue(1, r);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_GT(corr, 0.8);
}

TEST(NamedDatasetsTest, AdultLike) {
  const Table t = MakeAdultLike(1000, 1024, 3);
  EXPECT_EQ(t.num_rows(), 1000u);
  EXPECT_EQ(t.schema().sensitive_dims().size(), 1u);
  EXPECT_EQ(t.schema().attribute(0).domain_size, 1024u);
  EXPECT_EQ(t.schema().measures().size(), 1u);
}

TEST(NamedDatasetsTest, IpumsNumeric) {
  const Table t = MakeIpumsNumeric(500, {256, 64}, 3);
  EXPECT_EQ(t.schema().sensitive_dims().size(), 2u);
  EXPECT_EQ(t.schema().attribute(0).domain_size, 256u);
  EXPECT_EQ(t.schema().attribute(1).domain_size, 64u);
}

TEST(NamedDatasetsTest, Ipums4DAnd8D) {
  const Table t4 = MakeIpums4D(200, 54, 3);
  EXPECT_EQ(t4.schema().sensitive_dims().size(), 4u);
  int ordinals = 0;
  int categoricals = 0;
  for (const int attr : t4.schema().sensitive_dims()) {
    if (t4.schema().attribute(attr).kind == AttributeKind::kSensitiveOrdinal) {
      ++ordinals;
    } else {
      ++categoricals;
    }
  }
  EXPECT_EQ(ordinals, 2);
  EXPECT_EQ(categoricals, 2);

  const Table t8 = MakeIpums8D(200, 54, 3);
  EXPECT_EQ(t8.schema().sensitive_dims().size(), 8u);
}

TEST(NamedDatasetsTest, EcommerceLike) {
  const Table t = MakeEcommerceLike(300, 3);
  EXPECT_EQ(t.schema().sensitive_dims().size(), 3u);
  const auto postage = t.schema().FindAttribute("postage");
  ASSERT_TRUE(postage.ok());
  EXPECT_EQ(t.schema().attribute(postage.ValueOrDie()).kind,
            AttributeKind::kMeasure);
}

}  // namespace
}  // namespace ldp
