#include <cmath>

#include <gtest/gtest.h>

#include "fo/grr.h"
#include "fo/oue.h"

namespace ldp {
namespace {

TEST(GrrProtocolTest, Parameters) {
  const GrrProtocol proto(1.0, 10);
  const double e = std::exp(1.0);
  EXPECT_NEAR(proto.p(), e / (e + 9.0), 1e-12);
  EXPECT_NEAR(proto.q(), 1.0 / (e + 9.0), 1e-12);
  EXPECT_EQ(proto.kind(), FoKind::kGrr);
  EXPECT_EQ(proto.ReportSizeWords(), 1u);
}

TEST(GrrProtocolTest, EncodeStaysWithProbabilityP) {
  const GrrProtocol proto(2.0, 8);
  Rng rng(1);
  int stays = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) stays += (proto.Encode(5, rng).value == 5);
  EXPECT_NEAR(static_cast<double>(stays) / trials, proto.p(), 0.01);
}

TEST(GrrProtocolTest, FlipIsUniformOverOthers) {
  const GrrProtocol proto(1.0, 4);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) ++counts[proto.Encode(2, rng).value];
  // The three non-true values should be hit equally often.
  EXPECT_NEAR(counts[0], counts[1], trials * 0.02);
  EXPECT_NEAR(counts[1], counts[3], trials * 0.02);
  EXPECT_GT(counts[2], counts[0]);
}

TEST(GrrAccumulatorTest, UnbiasedCountEstimate) {
  const double eps = 1.5;
  const uint64_t domain = 12;
  const uint64_t n = 3000;
  const uint64_t true_count = 600;
  const GrrProtocol proto(eps, domain);
  Rng rng(3);
  double sum_est = 0.0;
  const int runs = 80;
  for (int run = 0; run < runs; ++run) {
    GrrAccumulator acc(proto);
    for (uint64_t u = 0; u < n; ++u) {
      const uint64_t v = u < true_count ? 4 : (u % 11 == 4 ? 11 : u % 11);
      acc.Add(proto.Encode(v, rng), u);
    }
    sum_est += acc.EstimateWeighted(4, WeightVector::Ones(n));
  }
  // GRR variance ~ n q (1-q) / (p-q)^2.
  const double var = n * proto.q() * (1 - proto.q()) /
                     ((proto.p() - proto.q()) * (proto.p() - proto.q()));
  EXPECT_NEAR(sum_est / runs, static_cast<double>(true_count),
              4.0 * std::sqrt(var / runs));
}

TEST(GrrAccumulatorTest, WeightedEstimate) {
  const GrrProtocol proto(3.0, 6);
  Rng rng(4);
  GrrAccumulator acc(proto);
  std::vector<double> weights;
  // With a large eps the estimate should be close to the weighted truth.
  double truth = 0.0;
  const uint64_t n = 20000;
  for (uint64_t u = 0; u < n; ++u) {
    const uint64_t v = u % 6;
    const double w = 1.0 + (u % 3);
    weights.push_back(w);
    if (v == 2) truth += w;
    acc.Add(proto.Encode(v, rng), u);
  }
  const WeightVector w(weights);
  EXPECT_NEAR(acc.EstimateWeighted(2, w), truth, truth * 0.15);
  EXPECT_NEAR(acc.GroupWeight(w), w.total(), 1e-6);
}

TEST(OueProtocolTest, Parameters) {
  const OueProtocol proto(1.0, 20);
  EXPECT_DOUBLE_EQ(proto.p(), 0.5);
  EXPECT_NEAR(proto.q(), 1.0 / (std::exp(1.0) + 1.0), 1e-12);
  EXPECT_EQ(proto.ReportSizeWords(), 1u);  // 20 bits fit one word
  EXPECT_EQ(OueProtocol(1.0, 65).ReportSizeWords(), 2u);
}

TEST(OueProtocolTest, BitProbabilities) {
  const OueProtocol proto(2.0, 16);
  Rng rng(5);
  int true_bits = 0;
  int false_bits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const FoReport r = proto.Encode(3, rng);
    ASSERT_EQ(r.bits.size(), 1u);
    true_bits += (r.bits[0] >> 3) & 1;
    false_bits += (r.bits[0] >> 9) & 1;
  }
  EXPECT_NEAR(static_cast<double>(true_bits) / trials, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(false_bits) / trials, proto.q(), 0.01);
}

TEST(OueAccumulatorTest, UnbiasedCountEstimate) {
  const double eps = 1.0;
  const OueProtocol proto(eps, 16);
  Rng rng(6);
  double sum_est = 0.0;
  const int runs = 60;
  const uint64_t n = 2000;
  const uint64_t true_count = 500;
  for (int run = 0; run < runs; ++run) {
    OueAccumulator acc(proto);
    for (uint64_t u = 0; u < n; ++u) {
      acc.Add(proto.Encode(u < true_count ? 9 : u % 8, rng), u);
    }
    sum_est += acc.EstimateWeighted(9, WeightVector::Ones(n));
  }
  // OUE variance = 4 n e^eps / (e^eps - 1)^2 (+ small term).
  const double e = std::exp(eps);
  const double var = 4.0 * n * e / ((e - 1.0) * (e - 1.0));
  EXPECT_NEAR(sum_est / runs, static_cast<double>(true_count),
              4.0 * std::sqrt(var / runs));
}

TEST(FoFactoryTest, CreateAllKinds) {
  EXPECT_TRUE(FrequencyOracle::Create(FoKind::kOlh, 1.0, 100, 64).ok());
  EXPECT_TRUE(FrequencyOracle::Create(FoKind::kGrr, 1.0, 100).ok());
  EXPECT_TRUE(FrequencyOracle::Create(FoKind::kOue, 1.0, 100).ok());
}

TEST(FoFactoryTest, Validation) {
  EXPECT_FALSE(FrequencyOracle::Create(FoKind::kOlh, 0.0, 100).ok());
  EXPECT_FALSE(FrequencyOracle::Create(FoKind::kOlh, -1.0, 100).ok());
  EXPECT_FALSE(FrequencyOracle::Create(FoKind::kOlh, 1.0, 0).ok());
  EXPECT_FALSE(FrequencyOracle::Create(FoKind::kOue, 1.0, 1ull << 30).ok());
}

TEST(FoFactoryTest, GrrSingleValueDomainWidened) {
  // A 1-value domain is widened to 2 so GRR's math stays defined.
  auto oracle = FrequencyOracle::Create(FoKind::kGrr, 1.0, 1);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.value()->domain_size(), 2u);
}

TEST(FoFactoryTest, AdaptiveSelectsByDomainSize) {
  // [35]: GRR beats OLH iff m < 3 e^eps + 2. At eps = 1 the threshold is
  // ~10.2.
  auto small =
      FrequencyOracle::Create(FoKind::kAdaptive, 1.0, 8).ValueOrDie();
  EXPECT_EQ(small->kind(), FoKind::kGrr);
  auto large =
      FrequencyOracle::Create(FoKind::kAdaptive, 1.0, 64).ValueOrDie();
  EXPECT_EQ(large->kind(), FoKind::kOlh);
  // Higher budget moves the threshold up.
  auto mid =
      FrequencyOracle::Create(FoKind::kAdaptive, 3.0, 32).ValueOrDie();
  EXPECT_EQ(mid->kind(), FoKind::kGrr);  // 3 e^3 + 2 ~ 62
}

TEST(FoKindTest, NamesRoundTrip) {
  for (FoKind kind :
       {FoKind::kOlh, FoKind::kGrr, FoKind::kOue, FoKind::kAdaptive}) {
    EXPECT_EQ(FoKindFromString(FoKindName(kind)).ValueOrDie(), kind);
  }
  EXPECT_EQ(FoKindFromString("OLH").ValueOrDie(), FoKind::kOlh);
  EXPECT_FALSE(FoKindFromString("nope").ok());
}

TEST(WeightVectorTest, Statistics) {
  const WeightVector w(std::vector<double>{1.0, -2.0, 3.0});
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.total(), 2.0);
  EXPECT_DOUBLE_EQ(w.sum_squares(), 14.0);
  EXPECT_DOUBLE_EQ(w[1], -2.0);
}

TEST(WeightVectorTest, UniqueIds) {
  const WeightVector a(std::vector<double>{1.0});
  const WeightVector b(std::vector<double>{1.0});
  EXPECT_NE(a.id(), b.id());
}

TEST(WeightVectorTest, Ones) {
  const WeightVector w = WeightVector::Ones(5);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w.total(), 5.0);
  EXPECT_DOUBLE_EQ(w.sum_squares(), 5.0);
}

TEST(ReportStoreTest, GroupsAreDense) {
  ReportStore store;
  const int g0 = store.AddGroup(
      FrequencyOracle::Create(FoKind::kOlh, 1.0, 8, 16).ValueOrDie());
  const int g1 = store.AddGroup(
      FrequencyOracle::Create(FoKind::kOlh, 1.0, 64, 16).ValueOrDie());
  EXPECT_EQ(g0, 0);
  EXPECT_EQ(g1, 1);
  EXPECT_EQ(store.num_groups(), 2);
  EXPECT_EQ(store.oracle(1).domain_size(), 64u);
  Rng rng(1);
  store.Add(0, store.Encode(0, 3, rng), 0);
  EXPECT_EQ(store.accumulator(0).num_reports(), 1u);
  EXPECT_EQ(store.accumulator(1).num_reports(), 0u);
}

}  // namespace
}  // namespace ldp
