#include "fo/hadamard.h"

#include "mech/factory.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(HadamardProtocolTest, Parameters) {
  const HadamardProtocol proto(1.0, 100);
  EXPECT_EQ(proto.transform_size(), 128u);  // next power of two
  const double e = std::exp(1.0);
  EXPECT_NEAR(proto.p(), e / (e + 1.0), 1e-12);
  EXPECT_NEAR(proto.scale(), (e + 1.0) / (e - 1.0), 1e-12);
  EXPECT_EQ(proto.kind(), FoKind::kHr);
  EXPECT_EQ(proto.ReportSizeWords(), 1u);
  EXPECT_EQ(HadamardProtocol(1.0, 1).transform_size(), 2u);
}

TEST(HadamardProtocolTest, WalshEntries) {
  // H[0][v] = +1 for every v; H[j][0] = +1 for every j.
  for (uint64_t v = 0; v < 16; ++v) EXPECT_EQ(HadamardProtocol::Entry(0, v), 1);
  for (uint64_t j = 0; j < 16; ++j) EXPECT_EQ(HadamardProtocol::Entry(j, 0), 1);
  EXPECT_EQ(HadamardProtocol::Entry(1, 1), -1);
  EXPECT_EQ(HadamardProtocol::Entry(3, 3), 1);  // popcount(3) = 2
  // Orthogonality: sum_j H[j][a] H[j][b] = D * delta_{ab}.
  const uint64_t D = 16;
  for (uint64_t a = 0; a < D; ++a) {
    for (uint64_t b = 0; b < D; ++b) {
      int sum = 0;
      for (uint64_t j = 0; j < D; ++j) {
        sum += HadamardProtocol::Entry(j, a) * HadamardProtocol::Entry(j, b);
      }
      EXPECT_EQ(sum, a == b ? static_cast<int>(D) : 0)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(HadamardProtocolTest, KeepProbabilityMatchesP) {
  const HadamardProtocol proto(2.0, 64);
  Rng rng(1);
  const uint64_t value = 37;
  int kept = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const FoReport r = proto.Encode(value, rng);
    const int x = HadamardProtocol::Entry(r.seed, value);
    const int y = r.value != 0 ? 1 : -1;
    kept += (x == y);
  }
  EXPECT_NEAR(static_cast<double>(kept) / trials, proto.p(), 0.01);
}

TEST(HadamardProtocolTest, IndexIsUniform) {
  const HadamardProtocol proto(1.0, 4);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[proto.Encode(2, rng).seed];
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(counts[j], trials / 4, trials * 0.02);
}

TEST(HadamardAccumulatorTest, UnbiasedCountEstimate) {
  const double eps = 1.0;
  const uint64_t n = 2000;
  const uint64_t true_count = 500;
  const HadamardProtocol proto(eps, 32);
  Rng rng(3);
  double sum_est = 0.0;
  const int runs = 100;
  for (int run = 0; run < runs; ++run) {
    HadamardAccumulator acc(proto);
    for (uint64_t u = 0; u < n; ++u) {
      const uint64_t v = u < true_count ? 13 : (u % 13 == 13 ? 14 : u % 13);
      acc.Add(proto.Encode(v, rng), u);
    }
    sum_est += acc.EstimateWeighted(13, WeightVector::Ones(n));
  }
  // Var ~ n * scale^2.
  const double var = n * proto.scale() * proto.scale();
  EXPECT_NEAR(sum_est / runs, static_cast<double>(true_count),
              4.0 * std::sqrt(var / runs));
}

TEST(HadamardAccumulatorTest, VarianceNearTheory) {
  const double eps = 2.0;
  const uint64_t n = 2000;
  const HadamardProtocol proto(eps, 16);
  Rng rng(4);
  const double truth = 100.0;
  double mse = 0.0;
  const int runs = 120;
  for (int run = 0; run < runs; ++run) {
    HadamardAccumulator acc(proto);
    for (uint64_t u = 0; u < n; ++u) {
      acc.Add(proto.Encode(u < 100 ? 7 : u % 7, rng), u);
    }
    const double est = acc.EstimateWeighted(7, WeightVector::Ones(n));
    mse += (est - truth) * (est - truth);
  }
  mse /= runs;
  const double theory = n * proto.scale() * proto.scale();
  EXPECT_GT(mse, theory * 0.5);
  EXPECT_LT(mse, theory * 2.0);
}

TEST(HadamardAccumulatorTest, WeightedEstimate) {
  const HadamardProtocol proto(4.0, 8);
  Rng rng(5);
  HadamardAccumulator acc(proto);
  std::vector<double> weights;
  double truth = 0.0;
  const uint64_t n = 30000;
  for (uint64_t u = 0; u < n; ++u) {
    const uint64_t v = u % 8;
    const double w = 1.0 + (u % 4);
    weights.push_back(w);
    if (v == 5) truth += w;
    acc.Add(proto.Encode(v, rng), u);
  }
  const WeightVector w(weights);
  EXPECT_NEAR(acc.EstimateWeighted(5, w), truth, truth * 0.15);
  EXPECT_NEAR(acc.GroupWeight(w), w.total(), 1e-6);
}

TEST(HadamardFactoryTest, CreateAndValidate) {
  EXPECT_TRUE(FrequencyOracle::Create(FoKind::kHr, 1.0, 1000).ok());
  EXPECT_FALSE(FrequencyOracle::Create(FoKind::kHr, 1.0, 1ull << 40).ok());
  EXPECT_EQ(FoKindFromString("hr").ValueOrDie(), FoKind::kHr);
  EXPECT_EQ(FoKindFromString("Hadamard").ValueOrDie(), FoKind::kHr);
  EXPECT_EQ(FoKindName(FoKind::kHr), "hr");
}

// HR inside HIO end-to-end (via the mechanism factory path).
TEST(HadamardFactoryTest, WorksInsideHio) {
  Schema schema;
  ASSERT_TRUE(schema.AddOrdinal("d", 16).ok());
  ASSERT_TRUE(schema.AddMeasure("w").ok());
  MechanismParams params;
  params.epsilon = 4.0;
  params.fanout = 2;
  params.fo_kind = FoKind::kHr;
  auto mech = CreateMechanism(MechanismKind::kHio, schema, params).ValueOrDie();
  Rng rng(6);
  const uint64_t n = 20000;
  double truth = 0.0;
  for (uint64_t u = 0; u < n; ++u) {
    const uint32_t v = static_cast<uint32_t>(u % 16);
    if (v >= 4 && v <= 11) truth += 1.0;
    const std::vector<uint32_t> values = {v};
    ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values, rng), u).ok());
  }
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{4, 11}};
  EXPECT_NEAR(mech->EstimateBox(ranges, w).ValueOrDie(), truth, n * 0.2);
}

}  // namespace
}  // namespace ldp
