#include "common/hash.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ldp {
namespace {

TEST(Mix64Test, DeterministicAndSpreads) {
  EXPECT_EQ(Mix64(123), Mix64(123));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);  // no collisions on consecutive inputs
}

TEST(HashCombineTest, SensitiveToBothArguments) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(1, 2), HashCombine(1, 3));
  EXPECT_EQ(HashCombine(7, 9), HashCombine(7, 9));
}

TEST(SeededHashFamilyTest, EvalInRange) {
  for (uint32_t g : {2u, 5u, 17u, 1000u}) {
    for (uint32_t seed = 0; seed < 50; ++seed) {
      for (uint64_t v = 0; v < 50; ++v) {
        EXPECT_LT(SeededHashFamily::Eval(seed, v, g), g);
      }
    }
  }
}

TEST(SeededHashFamilyTest, PooledSeedsStayInPool) {
  SeededHashFamily family(16);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(family.SampleSeed(rng), 16u);
}

TEST(SeededHashFamilyTest, UnboundedSeedsSpread) {
  SeededHashFamily family(0);
  Rng rng(2);
  std::set<uint32_t> seeds;
  for (int i = 0; i < 1000; ++i) seeds.insert(family.SampleSeed(rng));
  EXPECT_GT(seeds.size(), 990u);
}

// The family should behave approximately pairwise-independently: for two
// distinct values, collision probability over random seeds is ~1/g.
TEST(SeededHashFamilyTest, CollisionRateNearOneOverG) {
  const uint32_t g = 8;
  int collisions = 0;
  const int trials = 40000;
  for (int s = 0; s < trials; ++s) {
    if (SeededHashFamily::Eval(s, 1001, g) ==
        SeededHashFamily::Eval(s, 2002, g)) {
      ++collisions;
    }
  }
  EXPECT_NEAR(static_cast<double>(collisions) / trials, 1.0 / g, 0.01);
}

// Over random seeds, each bucket should be hit roughly uniformly.
TEST(SeededHashFamilyTest, BucketUniformityOverSeeds) {
  const uint32_t g = 10;
  std::vector<int> counts(g, 0);
  const int trials = 50000;
  for (int s = 0; s < trials; ++s) {
    ++counts[SeededHashFamily::Eval(s, 12345, g)];
  }
  for (uint32_t b = 0; b < g; ++b) {
    EXPECT_NEAR(counts[b], trials / g, trials / g * 0.1) << "bucket " << b;
  }
}

}  // namespace
}  // namespace ldp
