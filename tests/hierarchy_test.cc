#include "hierarchy/dim_hierarchy.h"

#include <set>

#include <gtest/gtest.h>

#include "common/privacy_math.h"
#include "common/random.h"
#include "hierarchy/interval.h"

namespace ldp {
namespace {

TEST(IntervalTest, Basics) {
  const Interval i{3, 7};
  EXPECT_EQ(i.length(), 5u);
  EXPECT_TRUE(i.Contains(3));
  EXPECT_TRUE(i.Contains(7));
  EXPECT_FALSE(i.Contains(8));
  EXPECT_TRUE(i.Contains(Interval{4, 6}));
  EXPECT_FALSE(i.Contains(Interval{4, 8}));
  EXPECT_TRUE(i.Overlaps(Interval{7, 9}));
  EXPECT_FALSE(i.Overlaps(Interval{8, 9}));
  EXPECT_EQ(i.ToString(), "[3, 7]");
}

TEST(IntervalTest, Intersect) {
  EXPECT_EQ(Intersect({1, 5}, {3, 9}).value(), (Interval{3, 5}));
  EXPECT_EQ(Intersect({3, 9}, {1, 5}).value(), (Interval{3, 5}));
  EXPECT_EQ(Intersect({1, 5}, {5, 9}).value(), (Interval{5, 5}));
  EXPECT_FALSE(Intersect({1, 4}, {5, 9}).has_value());
}

TEST(OrdinalHierarchyTest, PerfectPowerShape) {
  const OrdinalHierarchy h(8, 2);
  EXPECT_EQ(h.height(), 3);
  EXPECT_EQ(h.num_levels(), 4);
  EXPECT_EQ(h.padded_size(), 8u);
  EXPECT_EQ(h.NumIntervals(0), 1u);
  EXPECT_EQ(h.NumIntervals(1), 2u);
  EXPECT_EQ(h.NumIntervals(3), 8u);
  EXPECT_EQ(h.IntervalAt(0, 0), (Interval{0, 7}));
  EXPECT_EQ(h.IntervalAt(2, 1), (Interval{2, 3}));
  EXPECT_EQ(h.IntervalAt(3, 5), (Interval{5, 5}));
}

TEST(OrdinalHierarchyTest, PaddedShape) {
  const OrdinalHierarchy h(1000, 5);
  EXPECT_EQ(h.domain_size(), 1000u);
  EXPECT_EQ(h.padded_size(), 3125u);  // 5^5
  EXPECT_EQ(h.height(), 5);
}

TEST(OrdinalHierarchyTest, TrivialDomain) {
  const OrdinalHierarchy h(1, 5);
  EXPECT_EQ(h.height(), 1);
  EXPECT_EQ(h.padded_size(), 5u);
  std::vector<LevelInterval> out;
  ASSERT_TRUE(h.Decompose({0, 0}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

TEST(OrdinalHierarchyTest, MembershipIsConsistent) {
  const OrdinalHierarchy h(64, 4);
  for (uint64_t v = 0; v < 64; ++v) {
    for (int level = 0; level <= h.height(); ++level) {
      const uint64_t idx = h.IntervalIndexOf(v, level);
      EXPECT_TRUE(h.IntervalAt(level, idx).Contains(v))
          << "v=" << v << " level=" << level;
    }
  }
}

TEST(OrdinalHierarchyTest, PaperExampleFigure2) {
  // Figure 2: m = 8, b = 2; [2,7] (1-based) = [1,6] (0-based) decomposes into
  // [1,1], [2,3], [4,5], [6,6].
  const OrdinalHierarchy h(8, 2);
  std::vector<LevelInterval> out;
  ASSERT_TRUE(h.Decompose({1, 6}, &out).ok());
  std::multiset<std::pair<uint64_t, uint64_t>> got;
  for (const auto& li : out) {
    const Interval iv = h.IntervalAt(li.level, li.index);
    got.insert({iv.lo, iv.hi});
  }
  const std::multiset<std::pair<uint64_t, uint64_t>> want = {
      {1, 1}, {2, 3}, {4, 5}, {6, 6}};
  EXPECT_EQ(got, want);
}

TEST(OrdinalHierarchyTest, FullRangeIsRoot) {
  const OrdinalHierarchy h(1000, 5);  // padded
  std::vector<LevelInterval> out;
  ASSERT_TRUE(h.Decompose({0, 999}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].level, 0);
  EXPECT_EQ(out[0].index, 0u);
}

TEST(OrdinalHierarchyTest, DecomposeRejectsBadRange) {
  const OrdinalHierarchy h(16, 2);
  std::vector<LevelInterval> out;
  EXPECT_FALSE(h.Decompose({5, 3}, &out).ok());
  EXPECT_FALSE(h.Decompose({0, 16}, &out).ok());
}

// Property test: for many random ranges, the decomposition is disjoint,
// covers exactly the range, and respects the 2(b-1)log_b(m) bound.
class DecomposePropertyTest
    : public testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(DecomposePropertyTest, DisjointExactCoverWithinBound) {
  const auto [m, b] = GetParam();
  const OrdinalHierarchy h(m, b);
  Rng rng(m * 31 + b);
  const uint64_t bound = MaxDecomposedIntervals(b, m);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t lo = rng.UniformInt(m);
    const uint64_t hi = rng.UniformRange(lo, m - 1);
    std::vector<LevelInterval> out;
    ASSERT_TRUE(h.Decompose({lo, hi}, &out).ok());
    EXPECT_LE(out.size(), bound) << "[" << lo << "," << hi << "]";
    // Exact disjoint cover: every value in [lo,hi] in exactly one piece,
    // every value outside in none. (The root piece returned for the full
    // range may extend into padding; no user holds padded values.)
    const bool is_root_shortcut = out.size() == 1 && out[0].level == 0;
    std::vector<int> cover(m, 0);
    for (const auto& li : out) {
      const Interval iv = h.IntervalAt(li.level, li.index);
      for (uint64_t v = iv.lo; v <= iv.hi && v < m; ++v) ++cover[v];
      if (!is_root_shortcut) {
        // Non-root pieces lie entirely within the requested (real) range.
        EXPECT_LE(iv.hi, m - 1);
      }
    }
    for (uint64_t v = 0; v < m; ++v) {
      EXPECT_EQ(cover[v], (v >= lo && v <= hi) ? 1 : 0)
          << "v=" << v << " range=[" << lo << "," << hi << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, DecomposePropertyTest,
    testing::Values(std::make_tuple(8ull, 2u), std::make_tuple(16ull, 2u),
                    std::make_tuple(27ull, 3u), std::make_tuple(100ull, 5u),
                    std::make_tuple(1024ull, 5u), std::make_tuple(1000ull, 4u),
                    std::make_tuple(54ull, 5u), std::make_tuple(7ull, 2u)));

TEST(CategoricalHierarchyTest, TwoLevels) {
  const CategoricalHierarchy h(4);
  EXPECT_EQ(h.height(), 1);
  EXPECT_EQ(h.NumIntervals(0), 1u);
  EXPECT_EQ(h.NumIntervals(1), 4u);
  EXPECT_EQ(h.IntervalAt(0, 0), (Interval{0, 3}));
  EXPECT_EQ(h.IntervalAt(1, 2), (Interval{2, 2}));
  EXPECT_EQ(h.IntervalIndexOf(3, 0), 0u);
  EXPECT_EQ(h.IntervalIndexOf(3, 1), 3u);
}

TEST(CategoricalHierarchyTest, DecomposePoint) {
  const CategoricalHierarchy h(4);
  std::vector<LevelInterval> out;
  ASSERT_TRUE(h.Decompose({2, 2}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (LevelInterval{1, 2}));
}

TEST(CategoricalHierarchyTest, DecomposeFullIsStar) {
  const CategoricalHierarchy h(4);
  std::vector<LevelInterval> out;
  ASSERT_TRUE(h.Decompose({0, 3}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (LevelInterval{0, 0}));
}

TEST(CategoricalHierarchyTest, DecomposeSetIsSingletons) {
  const CategoricalHierarchy h(5);
  std::vector<LevelInterval> out;
  ASSERT_TRUE(h.Decompose({1, 3}, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i], (LevelInterval{1, i + 1}));
  }
}

TEST(DimHierarchyFactoryTest, MakesRightTypes) {
  auto ord = DimHierarchy::MakeOrdinal(100, 5);
  auto cat = DimHierarchy::MakeCategorical(7);
  EXPECT_NE(dynamic_cast<OrdinalHierarchy*>(ord.get()), nullptr);
  EXPECT_NE(dynamic_cast<CategoricalHierarchy*>(cat.get()), nullptr);
  EXPECT_EQ(cat->domain_size(), 7u);
}

}  // namespace
}  // namespace ldp
