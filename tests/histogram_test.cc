#include "engine/histogram.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace ldp {
namespace {

Schema OneDimSchema(uint64_t m) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d", m).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

std::unique_ptr<HioMechanism> CollectedHio(const Schema& schema,
                                           const std::vector<uint32_t>& values,
                                           double eps, uint64_t seed) {
  MechanismParams params;
  params.epsilon = eps;
  params.fanout = 2;
  auto mech = HioMechanism::Create(schema, params).ValueOrDie();
  Rng rng(seed);
  for (uint64_t u = 0; u < values.size(); ++u) {
    const std::vector<uint32_t> vals = {values[u]};
    EXPECT_TRUE(mech->AddReport(mech->EncodeUser(vals, rng), u).ok());
  }
  return mech;
}

TEST(NormSubTest, AlreadyValidIsAlmostUnchanged) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  NormSubInPlace(&v, 6.0);
  EXPECT_NEAR(v[0], 1.0, 1e-9);
  EXPECT_NEAR(v[1], 2.0, 1e-9);
  EXPECT_NEAR(v[2], 3.0, 1e-9);
}

TEST(NormSubTest, ClipsNegativesAndPreservesTotal) {
  std::vector<double> v = {5.0, -2.0, 4.0, -1.0};
  NormSubInPlace(&v, 6.0);  // true total 6
  double sum = 0.0;
  for (const double x : v) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 6.0, 1e-6);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
  // Mass order is preserved among surviving bins.
  EXPECT_GT(v[0], v[2]);
}

TEST(NormSubTest, ScalesUpWhenPositiveMassTooSmall) {
  std::vector<double> v = {1.0, -3.0, 1.0};
  NormSubInPlace(&v, 10.0);
  EXPECT_NEAR(v[0], 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_NEAR(v[2], 5.0, 1e-9);
}

TEST(NormSubTest, AllNegativeBecomesUniform) {
  std::vector<double> v = {-1.0, -2.0};
  NormSubInPlace(&v, 8.0);
  EXPECT_DOUBLE_EQ(v[0], 4.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
}

TEST(NormSubTest, NonPositiveTargetZeroesOut) {
  std::vector<double> v = {3.0, -1.0};
  NormSubInPlace(&v, 0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(HistogramTest, RecoversSkewedDistribution) {
  const uint64_t m = 16;
  const uint64_t n = 30000;
  const Schema schema = OneDimSchema(m);
  std::vector<uint32_t> values;
  std::vector<double> truth(m, 0.0);
  Rng data_rng(1);
  for (uint64_t u = 0; u < n; ++u) {
    // Skewed: half the mass on value 3.
    const uint32_t v = data_rng.Bernoulli(0.5)
                           ? 3
                           : static_cast<uint32_t>(data_rng.UniformInt(m));
    values.push_back(v);
    truth[v] += 1.0;
  }
  auto hio = CollectedHio(schema, values, 4.0, 2);
  const WeightVector w = WeightVector::Ones(n);
  const auto hist = EstimateHistogram(*hio, 0, w).ValueOrDie();
  ASSERT_EQ(hist.size(), m);
  double sum = 0.0;
  for (uint64_t v = 0; v < m; ++v) {
    EXPECT_GE(hist[v], 0.0);
    EXPECT_NEAR(hist[v], truth[v], n * 0.05) << "bin " << v;
    sum += hist[v];
  }
  EXPECT_NEAR(sum, static_cast<double>(n), 1e-6);  // norm-sub total
}

TEST(HistogramTest, WeightedHistogram) {
  const uint64_t m = 8;
  const uint64_t n = 20000;
  const Schema schema = OneDimSchema(m);
  std::vector<uint32_t> values;
  std::vector<double> weights;
  std::vector<double> truth(m, 0.0);
  for (uint64_t u = 0; u < n; ++u) {
    const uint32_t v = static_cast<uint32_t>(u % m);
    const double weight = 1.0 + (u % 3);
    values.push_back(v);
    weights.push_back(weight);
    truth[v] += weight;
  }
  auto hio = CollectedHio(schema, values, 4.0, 3);
  const WeightVector w(weights);
  const auto hist = EstimateHistogram(*hio, 0, w).ValueOrDie();
  for (uint64_t v = 0; v < m; ++v) {
    EXPECT_NEAR(hist[v], truth[v], w.total() * 0.08) << "bin " << v;
  }
}

TEST(HistogramTest, ConsistentVariant) {
  const uint64_t m = 16;
  const uint64_t n = 10000;
  const Schema schema = OneDimSchema(m);
  std::vector<uint32_t> values;
  for (uint64_t u = 0; u < n; ++u) values.push_back(u % m);
  auto hio = CollectedHio(schema, values, 2.0, 4);
  const WeightVector w = WeightVector::Ones(n);
  HistogramOptions options;
  options.consistent = true;
  options.non_negative = true;
  const auto hist = EstimateHistogram(*hio, 0, w, options).ValueOrDie();
  ASSERT_EQ(hist.size(), m);
  const double sum = std::accumulate(hist.begin(), hist.end(), 0.0);
  EXPECT_NEAR(sum, static_cast<double>(n), 1e-6);
}

TEST(HistogramTest, MultiDimHistogramOfOneDimension) {
  Schema schema;
  ASSERT_TRUE(schema.AddOrdinal("a", 8).ok());
  ASSERT_TRUE(schema.AddCategorical("c", 3).ok());
  ASSERT_TRUE(schema.AddMeasure("w").ok());
  MechanismParams params;
  params.epsilon = 4.0;
  params.fanout = 2;
  auto mech = HioMechanism::Create(schema, params).ValueOrDie();
  Rng rng(5);
  const uint64_t n = 20000;
  std::vector<double> truth(3, 0.0);
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {static_cast<uint32_t>(u % 8),
                                          static_cast<uint32_t>(u % 3)};
    truth[values[1]] += 1.0;
    ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values, rng), u).ok());
  }
  const WeightVector w = WeightVector::Ones(n);
  const auto hist = EstimateHistogram(*mech, 1, w).ValueOrDie();
  ASSERT_EQ(hist.size(), 3u);
  for (int v = 0; v < 3; ++v) EXPECT_NEAR(hist[v], truth[v], n * 0.08);
  // Consistent mode requires a single dimension.
  HistogramOptions options;
  options.consistent = true;
  EXPECT_FALSE(EstimateHistogram(*mech, 1, w, options).ok());
}

TEST(HistogramTest, ValidatesDimPosition) {
  const Schema schema = OneDimSchema(8);
  auto hio = CollectedHio(schema, {1, 2, 3}, 1.0, 6);
  const WeightVector w = WeightVector::Ones(3);
  EXPECT_FALSE(EstimateHistogram(*hio, -1, w).ok());
  EXPECT_FALSE(EstimateHistogram(*hio, 1, w).ok());
}

}  // namespace
}  // namespace ldp
