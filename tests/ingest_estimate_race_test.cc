// Concurrency regression test (designed to run under TSan via the exec-tsan
// preset): ingestion rounds racing estimation on one CollectionServer.
//
// CollectionServer is externally synchronized — Ingest mutates, EstimateBox
// reads — so the test holds a std::shared_mutex the way a real serving layer
// would: ingest rounds under the unique lock, bursts of *concurrent*
// EstimateBox calls under the shared lock. The concurrent readers are the
// interesting part: they hit the mechanisms' lazily built accumulator
// histogram caches (guarded internally by their own mutex) at the same time,
// and each ingest round invalidates those caches via the built-reports
// generation check. The test proves no torn or stale snapshot is ever
// served: every estimate observed by a racing reader is bit-identical to the
// estimate a fresh serial server produces for the same ingested prefix.

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/protocol.h"

namespace ldp {
namespace {

constexpr uint64_t kRounds = 4;
constexpr uint64_t kUsersPerRound = 250;
constexpr uint64_t kUsers = kRounds * kUsersPerRound;

Schema RaceSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 54).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 6).ok());
  return schema;
}

const std::vector<std::vector<Interval>>& QueryBoxes() {
  static const auto* boxes = new std::vector<std::vector<Interval>>{
      {{10, 40}, {2, 2}},
      {{0, 53}, {0, 5}},
      {{5, 12}, {1, 4}},
  };
  return *boxes;
}

struct RaceSetup {
  CollectionSpec spec;
  std::vector<std::string> storage;                     // one frame per user
  std::vector<CollectionServer::ReportFrame> frames;    // views into storage
  /// num_reports after round r -> the exact estimate per query box.
  std::map<uint64_t, std::vector<double>> expected;
};

RaceSetup MakeSetup() {
  RaceSetup setup;
  MechanismParams params;
  params.epsilon = 2.0;
  setup.spec =
      CollectionSpec::FromSchema(RaceSchema(), MechanismKind::kHio, params);
  const LdpClient client = LdpClient::Create(setup.spec).ValueOrDie();

  Rng rng(31);
  Rng data_rng(32);
  setup.storage.reserve(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(54)),
        static_cast<uint32_t>(data_rng.UniformInt(6))};
    setup.storage.push_back(client.EncodeUser(values, rng).ValueOrDie());
  }
  setup.frames.reserve(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) {
    setup.frames.push_back(
        CollectionServer::ReportFrame{setup.storage[u], u});
  }

  // Reference run: a serial server ingesting the same rounds records the
  // exact estimate for every (prefix, box) pair. Estimation is deterministic
  // given the ingested multiset and bit-identical across thread counts, so
  // the racing server must reproduce these doubles exactly.
  CollectionServer reference =
      CollectionServer::Create(setup.spec).ValueOrDie();
  const WeightVector weights = WeightVector::Ones(kUsers);
  const std::span<const CollectionServer::ReportFrame> frames(setup.frames);
  for (uint64_t r = 0; r < kRounds; ++r) {
    EXPECT_TRUE(
        reference
            .IngestBatch(frames.subspan(r * kUsersPerRound, kUsersPerRound))
            .ok())
        << "round " << r;
    std::vector<double> per_box;
    for (const auto& box : QueryBoxes()) {
      per_box.push_back(reference.EstimateBox(box, weights).ValueOrDie());
    }
    setup.expected[reference.num_reports()] = std::move(per_box);
  }
  return setup;
}

TEST(IngestEstimateRaceTest, ConcurrentReadersAlwaysSeeAConsistentPrefix) {
  const RaceSetup setup = MakeSetup();
  const WeightVector weights = WeightVector::Ones(kUsers);
  const std::span<const CollectionServer::ReportFrame> frames(setup.frames);

  CollectionServer server =
      CollectionServer::Create(setup.spec, /*num_threads=*/3).ValueOrDie();

  std::shared_mutex mu;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reader_passes{0};
  std::atomic<int> failures{0};

  // Two racing readers: each pass takes the shared lock and runs every query
  // box. Both readers hold the shared lock together, so their EstimateBox
  // calls (and the lazy histogram-cache builds inside) genuinely overlap.
  auto reader = [&] {
    while (!done.load(std::memory_order_acquire)) {
      {
        std::shared_lock<std::shared_mutex> lock(mu);
        const uint64_t n = server.num_reports();
        if (n > 0) {
          const auto it = setup.expected.find(n);
          if (it == setup.expected.end()) {
            failures.fetch_add(1);  // a partially applied round leaked out
          } else {
            for (size_t b = 0; b < QueryBoxes().size(); ++b) {
              const double est =
                  server.EstimateBox(QueryBoxes()[b], weights).ValueOrDie();
              if (est != it->second[b]) failures.fetch_add(1);
            }
          }
        }
      }
      reader_passes.fetch_add(1, std::memory_order_release);
      std::this_thread::yield();
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);

  // Writer: alternate IngestBatch rounds with serial Ingest rounds, each
  // under the unique lock; between rounds, wait until the readers have
  // completed fresh passes so every intermediate prefix is actually probed.
  for (uint64_t r = 0; r < kRounds; ++r) {
    {
      std::unique_lock<std::shared_mutex> lock(mu);
      const auto round = frames.subspan(r * kUsersPerRound, kUsersPerRound);
      if (r % 2 == 0) {
        ASSERT_TRUE(server.IngestBatch(round).ok()) << "round " << r;
      } else {
        for (const CollectionServer::ReportFrame& f : round) {
          ASSERT_TRUE(server.Ingest(f.bytes, f.user).ok());
        }
      }
    }
    const uint64_t target = reader_passes.load(std::memory_order_acquire) + 4;
    while (reader_passes.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.num_reports(), kUsers);
  // Final state matches the reference exactly.
  const auto& final_expected = setup.expected.at(kUsers);
  for (size_t b = 0; b < QueryBoxes().size(); ++b) {
    EXPECT_EQ(server.EstimateBox(QueryBoxes()[b], weights).ValueOrDie(),
              final_expected[b])
        << "box " << b;
  }
  EXPECT_EQ(server.ingest_stats().accepted, kUsers);
  EXPECT_EQ(server.ingest_stats().quarantined(), 0u);
}

}  // namespace
}  // namespace ldp
