// Cross-module integration tests: the full client -> server -> SQL pipeline
// exercised the way the benchmark harness uses it, including the paper's
// qualitative claims in miniature (HIO vs MG crossover, SC for low-dim
// queries over many dims).

#include <cmath>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/generator.h"
#include "engine/experiment.h"
#include "engine/query_gen.h"

namespace ldp {
namespace {

MechanismParams Params(double eps) {
  MechanismParams p;
  p.epsilon = eps;
  p.fanout = 5;
  p.hash_pool_size = 0;  // exactly unbiased; tables here are small enough
  return p;
}

// All four mechanisms must agree (within noise) with the exact answer on a
// common workload — they estimate the same quantity.
TEST(IntegrationTest, AllMechanismsEstimateTheSameAnswer) {
  const Table table = MakeIpumsNumeric(6000, {32}, 21);
  QueryGenerator gen(table, 3);
  const int measure = 1;
  std::vector<Query> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(
        gen.RandomVolumeQuery(Aggregate::Sum(measure), {0}, 0.4));
  }
  const std::vector<MechanismSpec> specs = {
      {MechanismKind::kHi, Params(5.0), ""},
      {MechanismKind::kHio, Params(5.0), ""},
      {MechanismKind::kSc, Params(5.0), ""},
      {MechanismKind::kMg, Params(5.0), ""},
  };
  const auto evals =
      EvaluateMechanisms(table, specs, queries, 5).ValueOrDie();
  for (const auto& e : evals) {
    EXPECT_LT(e.stats.mnae.mean(), 0.25) << e.label;
  }
}

// Section 5.4 / Figure 4: at large query volume HIO beats the marginal
// baseline decisively.
TEST(IntegrationTest, HioBeatsMarginalAtLargeVolume) {
  // Paper configuration: m = 1024, where a volume-0.8 range covers ~819
  // marginal cells and MG's error is ~3x HIO's (Figure 4).
  const Table table = MakeAdultLike(20000, 1024, 22);
  QueryGenerator gen(table, 4);
  const int measure = table.schema().FindAttribute("hours").ValueOrDie();
  std::vector<Query> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(
        gen.RandomVolumeQuery(Aggregate::Sum(measure), {0}, 0.8));
  }
  const std::vector<MechanismSpec> specs = {
      {MechanismKind::kHio, Params(2.0), ""},
      {MechanismKind::kMg, Params(2.0), ""},
  };
  const auto evals =
      EvaluateMechanisms(table, specs, queries, 6).ValueOrDie();
  EXPECT_LT(evals[0].stats.mnae.mean(), evals[1].stats.mnae.mean());
}

// Section 6.2.2 / Figure 12: with many sensitive dimensions and a
// low-dimensional query, SC beats HIO.
TEST(IntegrationTest, ScBeatsHioInHighDimLowQueryDim) {
  const Table table = MakeIpums8D(8000, 54, 23);
  QueryGenerator gen(table, 5);
  const int measure =
      table.schema().FindAttribute("weekly_work_hour").ValueOrDie();
  // 1+0 queries: one ordinal range, 7 dims unconstrained.
  std::vector<Query> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(
        gen.RandomVolumeQuery(Aggregate::Sum(measure), {0}, 0.5));
  }
  const std::vector<MechanismSpec> specs = {
      {MechanismKind::kHio, Params(2.0), ""},
      {MechanismKind::kSc, Params(2.0), ""},
  };
  const auto evals =
      EvaluateMechanisms(table, specs, queries, 8).ValueOrDie();
  EXPECT_LT(evals[1].stats.mnae.mean(), evals[0].stats.mnae.mean());
}

// Error shrinks as epsilon grows (Figure 5's monotonicity), averaged over a
// workload to keep the test stable.
TEST(IntegrationTest, ErrorShrinksWithEpsilon) {
  const Table table = MakeAdultLike(6000, 256, 24);
  QueryGenerator gen(table, 6);
  const int measure = table.schema().FindAttribute("hours").ValueOrDie();
  std::vector<Query> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(
        gen.RandomVolumeQuery(Aggregate::Sum(measure), {0}, 0.25));
  }
  double prev = 1e18;
  for (const double eps : {0.5, 2.0, 8.0}) {
    const std::vector<MechanismSpec> specs = {
        {MechanismKind::kHio, Params(eps), ""}};
    const auto evals =
        EvaluateMechanisms(table, specs, queries, 9).ValueOrDie();
    const double err = evals[0].stats.mnae.mean();
    EXPECT_LT(err, prev * 1.2) << "eps " << eps;  // mild slack for noise
    prev = err;
  }
}

// A CSV round trip feeds the engine identically to the in-memory table.
TEST(IntegrationTest, CsvRoundTripFeedsEngine) {
  const Table table = MakeIpums4D(2000, 54, 25);
  const std::string path = testing::TempDir() + "/integration.csv";
  ASSERT_TRUE(WriteCsv(table, path).ok());
  const Table loaded = ReadCsv(table.schema(), path).ValueOrDie();

  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params = Params(3.0);
  options.seed = 11;
  auto e1 = AnalyticsEngine::Create(table, options).ValueOrDie();
  auto e2 = AnalyticsEngine::Create(loaded, options).ValueOrDie();
  const char* sql =
      "SELECT AVG(weekly_work_hour) FROM T WHERE marital_status = 0";
  // Same data, same seeds -> identical reports -> identical estimates
  // modulo the rounding the CSV applies to measures.
  EXPECT_NEAR(e1->ExecuteSql(sql).ValueOrDie(),
              e2->ExecuteSql(sql).ValueOrDie(), 0.2);
}

// Deterministic replay: the same seed reproduces the same estimate exactly.
TEST(IntegrationTest, DeterministicGivenSeed) {
  const Table table = MakeIpums4D(2000, 54, 26);
  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params = Params(2.0);
  options.seed = 1234;
  auto e1 = AnalyticsEngine::Create(table, options).ValueOrDie();
  auto e2 = AnalyticsEngine::Create(table, options).ValueOrDie();
  const char* sql =
      "SELECT SUM(weekly_work_hour) FROM T WHERE age BETWEEN 10 AND 40";
  EXPECT_DOUBLE_EQ(e1->ExecuteSql(sql).ValueOrDie(),
                   e2->ExecuteSql(sql).ValueOrDie());
}

// Example 1.1 of the paper, end to end via SQL over all mechanisms.
TEST(IntegrationTest, PaperExampleQueryRuns) {
  TableSpec spec;
  spec.dims.push_back({"age", AttributeKind::kSensitiveOrdinal, 100,
                       ColumnDist::kGaussianBell, 1.0});
  spec.dims.push_back({"salary", AttributeKind::kSensitiveOrdinal, 200,
                       ColumnDist::kZipf, 1.1});
  spec.dims.push_back({"state", AttributeKind::kSensitiveCategorical, 50,
                       ColumnDist::kZipf, 1.0});
  spec.dims.push_back(
      {"os", AttributeKind::kPublicDimension, 2, ColumnDist::kUniform, 1.0});
  spec.measures.push_back(
      {"purchase", 0.0, 200.0, ColumnDist::kUniform, 1.0, 1, 0.4});
  const Table table = GenerateTable(spec, 20000, 27).ValueOrDie();
  const char* sql =
      "SELECT SUM(purchase) FROM T WHERE age BETWEEN 30 AND 40 AND salary "
      "BETWEEN 50 AND 150";
  const Query q = ParseQuery(table.schema(), sql).ValueOrDie();

  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params = Params(5.0);
  auto engine = AnalyticsEngine::Create(table, options).ValueOrDie();
  const double truth = engine->ExecuteExact(q).ValueOrDie();
  const double est = engine->ExecuteSql(sql).ValueOrDie();
  const double sigma = engine->AbsWeightTotal(q);
  // d = 3 sensitive dims with a 2-dim range predicate: the Theorem 9 noise
  // at this scale allows a few percent of Sigma_S.
  EXPECT_LT(std::abs(est - truth) / sigma, 0.2);
}

}  // namespace
}  // namespace ldp
