#include "hierarchy/level_grid.h"

#include <map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace ldp {
namespace {

std::unique_ptr<LevelGrid> Make2DGrid(uint64_t m1, uint64_t m2, uint32_t b) {
  std::vector<std::unique_ptr<DimHierarchy>> dims;
  dims.push_back(DimHierarchy::MakeOrdinal(m1, b));
  dims.push_back(DimHierarchy::MakeOrdinal(m2, b));
  return std::make_unique<LevelGrid>(std::move(dims));
}

std::unique_ptr<LevelGrid> MakeMixedGrid(uint64_t m, uint64_t c, uint32_t b) {
  std::vector<std::unique_ptr<DimHierarchy>> dims;
  dims.push_back(DimHierarchy::MakeOrdinal(m, b));
  dims.push_back(DimHierarchy::MakeCategorical(c));
  return std::make_unique<LevelGrid>(std::move(dims));
}

TEST(LevelGridTest, TupleCounts) {
  // m = 8, b = 2 -> h = 3 -> 4 levels per dim -> 16 2-dim levels (Fig. 3).
  auto grid = Make2DGrid(8, 8, 2);
  EXPECT_EQ(grid->num_dims(), 2);
  EXPECT_EQ(grid->num_level_tuples(), 16u);
  // Ordinal (h=3 -> 4 levels) x categorical (2 levels) = 8 (Fig. 13).
  auto mixed = MakeMixedGrid(8, 4, 2);
  EXPECT_EQ(mixed->num_level_tuples(), 8u);
}

TEST(LevelGridTest, FlatRoundTrip) {
  auto grid = MakeMixedGrid(8, 4, 2);
  std::vector<int> levels;
  for (uint64_t flat = 0; flat < grid->num_level_tuples(); ++flat) {
    grid->LevelsOf(flat, &levels);
    EXPECT_EQ(grid->FlatOf(levels), flat);
  }
}

TEST(LevelGridTest, NumCells) {
  auto grid = Make2DGrid(8, 8, 2);
  const std::vector<int> l00 = {0, 0};
  const std::vector<int> l21 = {2, 1};
  const std::vector<int> l33 = {3, 3};
  EXPECT_EQ(grid->NumCells(l00), 1u);
  EXPECT_EQ(grid->NumCells(l21), 8u);   // 4 * 2
  EXPECT_EQ(grid->NumCells(l33), 64u);  // 8 * 8
}

TEST(LevelGridTest, CellOfValuesMatchesPaperExample) {
  // Example 5.1: t[D1] = 3, t[D2] = 5 (1-based) -> 0-based values (2, 4).
  // On level (2, 1), D1's intervals are [0,1][2,3][4,5][6,7] -> index 1;
  // D2's intervals are [0,3][4,7] -> index 1. Row-major cell = 1*2 + 1 = 3.
  auto grid = Make2DGrid(8, 8, 2);
  const std::vector<int> levels = {2, 1};
  const std::vector<uint32_t> values = {2, 4};
  EXPECT_EQ(grid->CellOfValues(levels, values), 3u);
  const std::vector<uint64_t> indices = {1, 1};
  EXPECT_EQ(grid->CellOfIntervals(levels, indices), 3u);
}

TEST(LevelGridTest, CellOfValuesConsistentWithIntervalMembership) {
  auto grid = MakeMixedGrid(16, 3, 2);
  Rng rng(1);
  std::vector<int> levels;
  for (int trial = 0; trial < 500; ++trial) {
    const uint32_t v1 = static_cast<uint32_t>(rng.UniformInt(16));
    const uint32_t v2 = static_cast<uint32_t>(rng.UniformInt(3));
    const uint64_t flat = rng.UniformInt(grid->num_level_tuples());
    grid->LevelsOf(flat, &levels);
    const std::vector<uint32_t> values = {v1, v2};
    const uint64_t cell = grid->CellOfValues(levels, values);
    // Decode the row-major cell back into per-dim indices and check
    // membership.
    const uint64_t n2 = grid->dim(1).NumIntervals(levels[1]);
    const uint64_t i1 = cell / n2;
    const uint64_t i2 = cell % n2;
    EXPECT_TRUE(grid->dim(0).IntervalAt(levels[0], i1).Contains(v1));
    EXPECT_TRUE(grid->dim(1).IntervalAt(levels[1], i2).Contains(v2));
  }
}

TEST(LevelGridTest, DecomposeBoxCountsMultiply) {
  // Example 5.1 / Figure 3: [2,7]x[3,8] (1-based) over m=8 decomposes into
  // 4 x 2 = 8 sub-queries.
  auto grid = Make2DGrid(8, 8, 2);
  std::vector<SubQuery> out;
  const std::vector<Interval> ranges = {{1, 6}, {2, 7}};
  ASSERT_TRUE(grid->DecomposeBox(ranges, &out).ok());
  EXPECT_EQ(out.size(), 8u);
}

TEST(LevelGridTest, DecomposeBoxFullRangeUsesRoots) {
  auto grid = Make2DGrid(8, 8, 2);
  std::vector<SubQuery> out;
  const std::vector<Interval> ranges = {{0, 7}, {0, 7}};
  ASSERT_TRUE(grid->DecomposeBox(ranges, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].level_flat, 0u);
  EXPECT_EQ(out[0].cell, 0u);
}

TEST(LevelGridTest, DecomposeBoxValidation) {
  auto grid = Make2DGrid(8, 8, 2);
  std::vector<SubQuery> out;
  const std::vector<Interval> one_range = {{0, 7}};
  EXPECT_FALSE(grid->DecomposeBox(one_range, &out).ok());
  const std::vector<Interval> bad = {{0, 8}, {0, 7}};
  EXPECT_FALSE(grid->DecomposeBox(bad, &out).ok());
}

TEST(LevelGridTest, DecomposeBoxRespectsCap) {
  auto grid = Make2DGrid(1024, 1024, 2);
  std::vector<SubQuery> out;
  const std::vector<Interval> ranges = {{1, 1022}, {1, 1022}};
  EXPECT_FALSE(grid->DecomposeBox(ranges, &out, /*max_sub_queries=*/4).ok());
  EXPECT_TRUE(grid->DecomposeBox(ranges, &out).ok());
}

// Property: the decomposed sub-queries cover each box point exactly once.
// Verified by brute force over a small grid: a point (v1, v2) is covered by
// sub-query (levels, cell) iff CellOfValues(levels, point) == cell.
TEST(LevelGridTest, DecompositionIsExactDisjointCover) {
  auto grid = MakeMixedGrid(16, 3, 2);
  Rng rng(2);
  std::vector<int> levels;
  for (int trial = 0; trial < 60; ++trial) {
    const uint64_t l1 = rng.UniformInt(16);
    const uint64_t h1 = rng.UniformRange(l1, 15);
    const uint64_t v2 = rng.UniformInt(3);
    const bool full_cat = rng.Bernoulli(0.5);
    const std::vector<Interval> ranges = {
        {l1, h1}, full_cat ? Interval{0, 2} : Interval{v2, v2}};
    std::vector<SubQuery> subs;
    ASSERT_TRUE(grid->DecomposeBox(ranges, &subs).ok());
    for (uint32_t a = 0; a < 16; ++a) {
      for (uint32_t b = 0; b < 3; ++b) {
        const bool in_box =
            ranges[0].Contains(a) && ranges[1].Contains(b);
        int covered = 0;
        for (const SubQuery& sq : subs) {
          grid->LevelsOf(sq.level_flat, &levels);
          const std::vector<uint32_t> point = {a, b};
          covered += (grid->CellOfValues(levels, point) == sq.cell);
        }
        EXPECT_EQ(covered, in_box ? 1 : 0)
            << "point (" << a << "," << b << ")";
      }
    }
  }
}

}  // namespace
}  // namespace ldp
