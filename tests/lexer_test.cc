#include "query/lexer.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(LexerTest, BasicQuery) {
  const auto tokens =
      Tokenize("SELECT SUM(m) FROM T WHERE a BETWEEN 3 AND 7").ValueOrDie();
  ASSERT_EQ(tokens.size(), 14u);  // 13 tokens + end
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_TRUE(tokens[1].IsKeyword("SUM"));
  EXPECT_TRUE(tokens[2].IsSymbol("("));
  EXPECT_EQ(tokens[3].text, "m");
  EXPECT_TRUE(tokens[4].IsSymbol(")"));
  EXPECT_EQ(tokens[10].kind, Token::Kind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[10].number, 3.0);
  EXPECT_EQ(tokens.back().kind, Token::Kind::kEnd);
}

TEST(LexerTest, Numbers) {
  const auto tokens = Tokenize("1 2.5 1e3 3.25E-2 .5").ValueOrDie();
  EXPECT_DOUBLE_EQ(tokens[0].number, 1.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 2.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.0325);
  EXPECT_DOUBLE_EQ(tokens[4].number, 0.5);
}

TEST(LexerTest, ComparisonOperators) {
  const auto tokens = Tokenize("< <= > >= =").ValueOrDie();
  EXPECT_TRUE(tokens[0].IsSymbol("<"));
  EXPECT_TRUE(tokens[1].IsSymbol("<="));
  EXPECT_TRUE(tokens[2].IsSymbol(">"));
  EXPECT_TRUE(tokens[3].IsSymbol(">="));
  EXPECT_TRUE(tokens[4].IsSymbol("="));
}

TEST(LexerTest, BracketsAndArithmetic) {
  const auto tokens = Tokenize("[1, 2] * + -").ValueOrDie();
  EXPECT_TRUE(tokens[0].IsSymbol("["));
  EXPECT_TRUE(tokens[2].IsSymbol(","));
  EXPECT_TRUE(tokens[4].IsSymbol("]"));
  EXPECT_TRUE(tokens[5].IsSymbol("*"));
  EXPECT_TRUE(tokens[6].IsSymbol("+"));
  EXPECT_TRUE(tokens[7].IsSymbol("-"));
}

TEST(LexerTest, IdentifiersWithUnderscores) {
  const auto tokens = Tokenize("weekly_work_hour _x a1").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "weekly_work_hour");
  EXPECT_EQ(tokens[1].text, "_x");
  EXPECT_EQ(tokens[2].text, "a1");
}

TEST(LexerTest, KeywordMatchingIsCaseInsensitive) {
  const auto tokens = Tokenize("WhErE").ValueOrDie();
  EXPECT_TRUE(tokens[0].IsKeyword("where"));
  EXPECT_TRUE(tokens[0].IsKeyword("WHERE"));
  EXPECT_FALSE(tokens[0].IsKeyword("were"));
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  const auto tokens = Tokenize("   \t\n ").ValueOrDie();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, Token::Kind::kEnd);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("a; b").ok());
  EXPECT_FALSE(Tokenize("'quoted'").ok());
}

TEST(LexerTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(Tokenize("1.2.3").ok());
}

}  // namespace
}  // namespace ldp
