#include "common/logging.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(prev);
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  LDP_CHECK(true);
  LDP_CHECK_EQ(1, 1);
  LDP_CHECK_NE(1, 2);
  LDP_CHECK_LT(1, 2);
  LDP_CHECK_LE(2, 2);
  LDP_CHECK_GT(3, 2);
  LDP_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ LDP_CHECK(1 == 2); }, "Check failed");
}

TEST(LoggingDeathTest, CheckOpFailurePrintsValues) {
  EXPECT_DEATH({ LDP_CHECK_EQ(3, 4); }, "3 vs 4");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ LDP_LOG_STREAM(Fatal) << "goodbye"; }, "goodbye");
}

TEST(LoggingTest, InfoLogDoesNotAbort) {
  LDP_LOG(Info) << "hello from the test";
  LDP_LOG(Debug) << "suppressed by default level";
}

}  // namespace
}  // namespace ldp
