#include "mech/calm.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mech/factory.h"

namespace ldp {
namespace {

Schema MakeSchema(std::vector<uint64_t> domains) {
  Schema schema;
  for (size_t i = 0; i < domains.size(); ++i) {
    EXPECT_TRUE(
        schema.AddOrdinal("d" + std::to_string(i), domains[i]).ok());
  }
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps) {
  MechanismParams p;
  p.epsilon = eps;
  p.hash_pool_size = 0;
  return p;
}

TEST(CalmTest, MarginalOrderTracksDomainBudget) {
  // One dimension: nothing to pair, order 1.
  EXPECT_EQ(CalmMarginalOrder(MakeSchema({16})), 1);
  // Two moderate dimensions: 16*12 = 192 cells fits, order 2.
  EXPECT_EQ(CalmMarginalOrder(MakeSchema({16, 12})), 2);
  // Three small dimensions: 8^3 = 512 cells fits, order 3.
  EXPECT_EQ(CalmMarginalOrder(MakeSchema({8, 8, 8})), 3);
  // Three larger dimensions: 20^3 = 8000 blows the cell budget, 20^2 fits.
  EXPECT_EQ(CalmMarginalOrder(MakeSchema({20, 20, 20})), 2);
}

TEST(CalmTest, CreateValidatesAndLaysOutMarginals) {
  EXPECT_FALSE(CalmMechanism::Create(MakeSchema({16, 16}), Params(0.0)).ok());
  Schema no_sensitive;
  ASSERT_TRUE(no_sensitive.AddMeasure("w").ok());
  EXPECT_FALSE(CalmMechanism::Create(no_sensitive, Params(1.0)).ok());

  // Order 3 over three dims -> the single full marginal C(3,3) = 1.
  auto full = CalmMechanism::Create(MakeSchema({8, 8, 8}), Params(1.0))
                  .ValueOrDie();
  EXPECT_EQ(full->marginal_order(), 3);
  EXPECT_EQ(full->num_marginals(), 1);
  // Order 2 over three dims -> C(3,2) = 3 pair marginals.
  auto pairs = CalmMechanism::Create(MakeSchema({20, 20, 20}), Params(1.0))
                   .ValueOrDie();
  EXPECT_EQ(pairs->marginal_order(), 2);
  EXPECT_EQ(pairs->num_marginals(), 3);
  EXPECT_EQ(pairs->NumReportGroups(), 3u);
}

TEST(CalmTest, EncodePicksUniformMarginal) {
  auto mech = CalmMechanism::Create(MakeSchema({20, 20, 20}), Params(1.0))
                  .ValueOrDie();
  Rng rng(1);
  std::vector<int> counts(mech->num_marginals(), 0);
  const int trials = 6000;
  for (int i = 0; i < trials; ++i) {
    const std::vector<uint32_t> values = {3, 7, 11};
    const LdpReport r = mech->EncodeUser(values, rng);
    ASSERT_EQ(r.entries.size(), 1u);
    ASSERT_LT(r.entries[0].group,
              static_cast<uint32_t>(mech->num_marginals()));
    ++counts[r.entries[0].group];
  }
  const double expected = static_cast<double>(trials) / counts.size();
  for (size_t m = 0; m < counts.size(); ++m) {
    EXPECT_NEAR(counts[m], expected, expected * 0.25) << "marginal " << m;
  }
}

TEST(CalmTest, ValidateRejectsMalformedReports) {
  auto mech =
      CalmMechanism::Create(MakeSchema({16, 12}), Params(1.0)).ValueOrDie();
  LdpReport bad_group;
  bad_group.entries.push_back({99, {}});
  EXPECT_FALSE(mech->AddReport(bad_group, 0).ok());
  LdpReport empty;
  EXPECT_FALSE(mech->AddReport(empty, 0).ok());
  Rng rng(2);
  LdpReport doubled = mech->EncodeUser(std::vector<uint32_t>{1, 2}, rng);
  doubled.entries.push_back(doubled.entries[0]);
  EXPECT_FALSE(mech->ValidateReport(doubled).ok());
}

TEST(CalmTest, ShardMergeMatchesDirectIngestBitwise) {
  const Schema schema = MakeSchema({16, 12});
  const uint64_t n = 800;
  Rng data_rng(3);
  std::vector<std::vector<uint32_t>> values(n);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(12))};
  }
  auto direct =
      CalmMechanism::Create(schema, Params(2.0)).ValueOrDie();
  std::vector<LdpReport> reports;
  Rng rng(4);
  for (uint64_t u = 0; u < n; ++u) {
    reports.push_back(direct->EncodeUser(values[u], rng));
  }
  for (uint64_t u = 0; u < n; ++u) {
    ASSERT_TRUE(direct->AddReport(reports[u], u).ok());
  }
  auto merged =
      CalmMechanism::Create(schema, Params(2.0)).ValueOrDie();
  auto shard_a = merged->NewShard().ValueOrDie();
  auto shard_b = merged->NewShard().ValueOrDie();
  for (uint64_t u = 0; u < n / 2; ++u) {
    ASSERT_TRUE(shard_a->AddReport(reports[u], u).ok());
  }
  for (uint64_t u = n / 2; u < n; ++u) {
    ASSERT_TRUE(shard_b->AddReport(reports[u], u).ok());
  }
  ASSERT_TRUE(merged->Merge(std::move(*shard_a)).ok());
  ASSERT_TRUE(merged->Merge(std::move(*shard_b)).ok());
  EXPECT_EQ(merged->num_reports(), direct->num_reports());

  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{2, 9}, {0, 11}};
  EXPECT_EQ(direct->EstimateBox(ranges, w).ValueOrDie(),
            merged->EstimateBox(ranges, w).ValueOrDie());
}

TEST(CalmTest, UnbiasedOnCoveredBox) {
  // Both constrained dims sit inside the single pair marginal; cell
  // boundaries are exact, so the estimator must be unbiased.
  const double eps = 2.0;
  const uint64_t n = 4000;
  const Schema schema = MakeSchema({16, 12});
  std::vector<std::vector<uint32_t>> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  Rng data_rng(5);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(12))};
    weights[u] = 1.0 + static_cast<double>(u % 3);
    if (values[u][0] >= 3 && values[u][0] <= 12 && values[u][1] >= 5 &&
        values[u][1] <= 10) {
      truth += weights[u];
    }
  }
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {{3, 12}, {5, 10}};
  const int runs = 40;
  Rng rng(6);
  double sum_est = 0.0;
  double mse = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = CalmMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    const double est = mech->EstimateBox(ranges, w).ValueOrDie();
    sum_est += est;
    mse += (est - truth) * (est - truth);
  }
  mse /= runs;
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(mse / runs) + 1e-9);
}

TEST(CalmTest, GreedyCoverHandlesMoreDimsThanOrder) {
  // Three constrained dims over an order-2 layout: no single marginal
  // covers the predicate, so the greedy cover multiplies per-factor
  // selectivities. On independent uniform data the product assumption holds,
  // so the estimate stays near the truth (loose band: two noisy factors).
  const uint64_t n = 6000;
  const Schema schema = MakeSchema({20, 20, 20});
  std::vector<std::vector<uint32_t>> values(n);
  double truth = 0.0;
  Rng data_rng(7);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(20)),
                 static_cast<uint32_t>(data_rng.UniformInt(20)),
                 static_cast<uint32_t>(data_rng.UniformInt(20))};
    if (values[u][0] < 10 && values[u][1] < 10 && values[u][2] < 10) {
      truth += 1.0;
    }
  }
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{0, 9}, {0, 9}, {0, 9}};
  const int runs = 25;
  Rng rng(8);
  double sum_est = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = CalmMechanism::Create(schema, Params(3.0)).ValueOrDie();
    ASSERT_EQ(mech->marginal_order(), 2);
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    sum_est += mech->EstimateBox(ranges, w).ValueOrDie();
  }
  EXPECT_NEAR(sum_est / runs, truth, 0.35 * truth + 0.05 * n);
}

TEST(CalmTest, EstimateBoxValidatesRanges) {
  auto mech =
      CalmMechanism::Create(MakeSchema({16, 12}), Params(1.0)).ValueOrDie();
  Rng rng(9);
  ASSERT_TRUE(
      mech->AddReport(mech->EncodeUser(std::vector<uint32_t>{0, 0}, rng), 0)
          .ok());
  const WeightVector w = WeightVector::Ones(1);
  const std::vector<Interval> one = {{0, 15}};
  EXPECT_FALSE(mech->EstimateBox(one, w).ok());
  const std::vector<Interval> oob = {{0, 16}, {0, 11}};
  EXPECT_FALSE(mech->EstimateBox(oob, w).ok());
}

TEST(CalmTest, FactoryBuildsIt) {
  auto mech =
      CreateMechanism(MechanismKind::kCalm, MakeSchema({16, 12}), Params(1.0));
  ASSERT_TRUE(mech.ok());
  EXPECT_EQ(mech.value()->kind(), MechanismKind::kCalm);
  EXPECT_EQ(MechanismKindFromString("calm").ValueOrDie(),
            MechanismKind::kCalm);
  EXPECT_EQ(MechanismKindName(MechanismKind::kCalm), "CALM");
}

}  // namespace
}  // namespace ldp
