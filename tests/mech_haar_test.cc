#include "mech/haar.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mech/factory.h"
#include "mech/hio.h"

namespace ldp {
namespace {

Schema OneDimSchema(uint64_t m) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d", m).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps) {
  MechanismParams p;
  p.epsilon = eps;
  p.hash_pool_size = 0;
  return p;
}

TEST(HaarTest, CreateValidates) {
  EXPECT_FALSE(HaarMechanism::Create(OneDimSchema(16), Params(0.0)).ok());
  Schema two_dims;
  ASSERT_TRUE(two_dims.AddOrdinal("a", 16).ok());
  ASSERT_TRUE(two_dims.AddOrdinal("b", 16).ok());
  ASSERT_TRUE(two_dims.AddMeasure("w").ok());
  EXPECT_FALSE(HaarMechanism::Create(two_dims, Params(1.0)).ok());
  Schema categorical;
  ASSERT_TRUE(categorical.AddCategorical("c", 16).ok());
  ASSERT_TRUE(categorical.AddMeasure("w").ok());
  EXPECT_FALSE(HaarMechanism::Create(categorical, Params(1.0)).ok());
  EXPECT_TRUE(HaarMechanism::Create(OneDimSchema(16), Params(1.0)).ok());
}

TEST(HaarTest, PadsToPowerOfTwo) {
  auto mech = HaarMechanism::Create(OneDimSchema(100), Params(1.0)).ValueOrDie();
  EXPECT_EQ(mech->height(), 7);
  EXPECT_EQ(mech->padded_size(), 128u);
}

// A contiguous range has at most two non-zero detail coefficients per level
// plus the scaling term — the wavelet decomposition is O(h).
TEST(HaarTest, DecompositionIsPolylogarithmic) {
  auto mech =
      HaarMechanism::Create(OneDimSchema(1024), Params(1.0)).ValueOrDie();
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t lo = rng.UniformInt(1024);
    const uint64_t hi = rng.UniformRange(lo, 1023);
    const auto terms = mech->DecomposeRange({lo, hi});
    EXPECT_LE(terms.size(), 1u + 2u * mech->height());
  }
}

// The Haar reconstruction identity: with exact block sums, the terms
// reproduce the range count exactly. Verify by brute force on a small
// domain against a known vector.
TEST(HaarTest, ReconstructionIdentityIsExact) {
  auto mech = HaarMechanism::Create(OneDimSchema(16), Params(1.0)).ValueOrDie();
  // Deterministic "data": f[v] = 1 + v mod 5.
  std::vector<double> f(16);
  for (int v = 0; v < 16; ++v) f[v] = 1.0 + (v % 5);
  auto block_sum = [&](int level, uint64_t block) {
    const int shift = 4 - level;
    double sum = 0.0;
    for (uint64_t v = block << shift; v < ((block + 1) << shift); ++v) {
      sum += f[v];
    }
    return sum;
  };
  for (uint64_t lo = 0; lo < 16; ++lo) {
    for (uint64_t hi = lo; hi < 16; ++hi) {
      double truth = 0.0;
      for (uint64_t v = lo; v <= hi; ++v) truth += f[v];
      const auto terms = mech->DecomposeRange({lo, hi});
      double reconstructed = terms[0].coefficient * block_sum(0, 0);
      for (size_t i = 1; i < terms.size(); ++i) {
        reconstructed += terms[i].coefficient *
                         (block_sum(terms[i].child_level, terms[i].left_child) -
                          block_sum(terms[i].child_level,
                                    terms[i].left_child + 1));
      }
      EXPECT_NEAR(reconstructed, truth, 1e-9)
          << "range [" << lo << ", " << hi << "]";
    }
  }
}

TEST(HaarTest, UnbiasedOnRangeQueries) {
  const double eps = 2.0;
  const uint64_t n = 4000;
  const Schema schema = OneDimSchema(16);
  std::vector<uint32_t> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  const Interval box{3, 11};
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>((u * 7) % 16);
    weights[u] = 1.0 + static_cast<double>(u % 3);
    if (box.Contains(values[u])) truth += weights[u];
  }
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {box};
  const int runs = 40;
  Rng rng(2);
  double sum_est = 0.0;
  double mse = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = HaarMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      const std::vector<uint32_t> vals = {values[u]};
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(vals, rng), u).ok());
    }
    const double est = mech->EstimateBox(ranges, w).ValueOrDie();
    sum_est += est;
    mse += (est - truth) * (est - truth);
  }
  mse /= runs;
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(mse / runs) + 1e-9);
  // And the VarianceBound dominates the empirical MSE.
  auto mech = HaarMechanism::Create(schema, Params(eps)).ValueOrDie();
  EXPECT_LT(mse, mech->VarianceBound(ranges, w).ValueOrDie() * 1.5);
}

TEST(HaarTest, ValidatesInputs) {
  auto mech = HaarMechanism::Create(OneDimSchema(16), Params(1.0)).ValueOrDie();
  const WeightVector w = WeightVector::Ones(0);
  const std::vector<Interval> two = {{0, 3}, {0, 3}};
  EXPECT_FALSE(mech->EstimateBox(two, w).ok());
  const std::vector<Interval> oob = {{0, 16}};
  EXPECT_FALSE(mech->EstimateBox(oob, w).ok());
  LdpReport bad;
  bad.entries.push_back({99, {}});
  EXPECT_FALSE(mech->AddReport(bad, 0).ok());
}

TEST(HaarTest, FactoryBuildsIt) {
  auto mech =
      CreateMechanism(MechanismKind::kHaar, OneDimSchema(16), Params(1.0));
  ASSERT_TRUE(mech.ok());
  EXPECT_EQ(mech.value()->kind(), MechanismKind::kHaar);
  EXPECT_EQ(MechanismKindFromString("haar").ValueOrDie(),
            MechanismKind::kHaar);
  EXPECT_EQ(MechanismKindFromString("wavelet").ValueOrDie(),
            MechanismKind::kHaar);
}

// Section 7's open question made concrete: with uniform user-partitioning,
// the wavelet estimate is in the same ballpark as binary HIO but does not
// beat it (the per-level coefficient weights are not optimized).
TEST(HaarTest, ComparableToBinaryHio) {
  const double eps = 1.0;
  const uint64_t n = 5000;
  const uint64_t m = 256;
  const Schema schema = OneDimSchema(m);
  std::vector<uint32_t> values(n);
  double truth = 0.0;
  const Interval box{31, 200};
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>((u * 11) % m);
    if (box.Contains(values[u])) truth += 1.0;
  }
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {box};
  MechanismParams hio_params = Params(eps);
  hio_params.fanout = 2;
  const int runs = 20;
  Rng rng(3);
  double haar_mse = 0.0;
  double hio_mse = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto haar = HaarMechanism::Create(schema, Params(eps)).ValueOrDie();
    auto hio = HioMechanism::Create(schema, hio_params).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      const std::vector<uint32_t> vals = {values[u]};
      ASSERT_TRUE(haar->AddReport(haar->EncodeUser(vals, rng), u).ok());
      ASSERT_TRUE(hio->AddReport(hio->EncodeUser(vals, rng), u).ok());
    }
    const double e1 = haar->EstimateBox(ranges, w).ValueOrDie() - truth;
    const double e2 = hio->EstimateBox(ranges, w).ValueOrDie() - truth;
    haar_mse += e1 * e1;
    hio_mse += e2 * e2;
  }
  // Same order of magnitude (within 10x either way).
  EXPECT_LT(haar_mse, hio_mse * 10.0);
  EXPECT_LT(hio_mse, haar_mse * 10.0);
}

}  // namespace
}  // namespace ldp
