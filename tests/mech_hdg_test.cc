#include "mech/hdg.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mech/factory.h"

namespace ldp {
namespace {

Schema TwoDimSchema(uint64_t m1 = 16, uint64_t m2 = 16) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("x", m1).ok());
  EXPECT_TRUE(schema.AddOrdinal("y", m2).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

Schema ThreeDimSchema(uint64_t m = 16) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("x", m).ok());
  EXPECT_TRUE(schema.AddOrdinal("y", m).ok());
  EXPECT_TRUE(schema.AddOrdinal("z", m).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps, uint64_t hint = 0) {
  MechanismParams p;
  p.epsilon = eps;
  p.hash_pool_size = 0;
  p.population_hint = hint;
  return p;
}

TEST(HdgTest, GranularitiesScaleWithBudgetAndPopulation) {
  uint32_t g1 = 0;
  uint32_t g2 = 0;
  HdgGranularities(1.0, 0, 2, &g1, &g2);
  EXPECT_GE(g1, 2u);
  EXPECT_GE(g2, 2u);
  EXPECT_GE(g1, g2);  // 1-D grids afford finer cells than 2-D grids

  // More budget or more users -> finer grids; more grids (dims) -> coarser.
  uint32_t g1_rich = 0, g2_rich = 0;
  HdgGranularities(4.0, 0, 2, &g1_rich, &g2_rich);
  EXPECT_GT(g1_rich, g1);
  uint32_t g1_big = 0, g2_big = 0;
  HdgGranularities(1.0, 1000000, 2, &g1_big, &g2_big);
  EXPECT_GT(g1_big, g1);
  uint32_t g1_many = 0, g2_many = 0;
  HdgGranularities(1.0, 0, 8, &g1_many, &g2_many);
  EXPECT_LE(g1_many, g1);
}

TEST(HdgTest, CreateValidates) {
  EXPECT_FALSE(HdgMechanism::Create(TwoDimSchema(), Params(0.0)).ok());
  Schema no_sensitive;
  ASSERT_TRUE(no_sensitive.AddMeasure("w").ok());
  EXPECT_FALSE(HdgMechanism::Create(no_sensitive, Params(1.0)).ok());
}

TEST(HdgTest, LayoutBuildsOneDimAndPairGrids) {
  auto two = HdgMechanism::Create(TwoDimSchema(), Params(2.0)).ValueOrDie();
  EXPECT_EQ(two->num_grids(), 3);  // 2 one-dim + C(2,2) = 1 pair
  EXPECT_EQ(two->NumReportGroups(), 3u);
  auto three = HdgMechanism::Create(ThreeDimSchema(), Params(2.0)).ValueOrDie();
  EXPECT_EQ(three->num_grids(), 6);  // 3 one-dim + C(3,2) = 3 pairs
  EXPECT_GE(three->g1(), three->g2());
  EXPECT_GE(three->g2(), 2u);
}

TEST(HdgTest, EncodePicksUniformGrid) {
  auto mech = HdgMechanism::Create(ThreeDimSchema(), Params(1.0)).ValueOrDie();
  Rng rng(1);
  std::vector<int> counts(mech->num_grids(), 0);
  const int trials = 6000;
  for (int i = 0; i < trials; ++i) {
    const std::vector<uint32_t> values = {3, 7, 11};
    const LdpReport r = mech->EncodeUser(values, rng);
    ASSERT_EQ(r.entries.size(), 1u);
    ASSERT_LT(r.entries[0].group, static_cast<uint32_t>(mech->num_grids()));
    ++counts[r.entries[0].group];
  }
  const double expected = static_cast<double>(trials) / counts.size();
  for (size_t g = 0; g < counts.size(); ++g) {
    EXPECT_NEAR(counts[g], expected, expected * 0.25) << "grid " << g;
  }
}

TEST(HdgTest, ValidateRejectsMalformedReports) {
  auto mech = HdgMechanism::Create(TwoDimSchema(), Params(1.0)).ValueOrDie();
  LdpReport bad_group;
  bad_group.entries.push_back({99, {}});
  EXPECT_FALSE(mech->AddReport(bad_group, 0).ok());
  LdpReport empty;
  EXPECT_FALSE(mech->AddReport(empty, 0).ok());
  Rng rng(2);
  LdpReport two_entries = mech->EncodeUser(std::vector<uint32_t>{1, 2}, rng);
  two_entries.entries.push_back(two_entries.entries[0]);
  EXPECT_FALSE(mech->ValidateReport(two_entries).ok());
}

TEST(HdgTest, ShardMergeMatchesDirectIngestBitwise) {
  const Schema schema = TwoDimSchema();
  const uint64_t n = 800;
  Rng data_rng(3);
  std::vector<std::vector<uint32_t>> values(n);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(16))};
  }
  // Encode once; feed the same report bits down both ingestion paths.
  auto direct = HdgMechanism::Create(schema, Params(2.0)).ValueOrDie();
  std::vector<LdpReport> reports;
  Rng rng(4);
  for (uint64_t u = 0; u < n; ++u) {
    reports.push_back(direct->EncodeUser(values[u], rng));
  }
  for (uint64_t u = 0; u < n; ++u) {
    ASSERT_TRUE(direct->AddReport(reports[u], u).ok());
  }
  auto merged = HdgMechanism::Create(schema, Params(2.0)).ValueOrDie();
  auto shard_a = merged->NewShard().ValueOrDie();
  auto shard_b = merged->NewShard().ValueOrDie();
  for (uint64_t u = 0; u < n / 2; ++u) {
    ASSERT_TRUE(shard_a->AddReport(reports[u], u).ok());
  }
  for (uint64_t u = n / 2; u < n; ++u) {
    ASSERT_TRUE(shard_b->AddReport(reports[u], u).ok());
  }
  ASSERT_TRUE(merged->Merge(std::move(*shard_a)).ok());
  ASSERT_TRUE(merged->Merge(std::move(*shard_b)).ok());
  EXPECT_EQ(merged->num_reports(), direct->num_reports());

  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{2, 9}, {0, 15}};
  EXPECT_EQ(direct->EstimateBox(ranges, w).ValueOrDie(),
            merged->EstimateBox(ranges, w).ValueOrDie());
}

TEST(HdgTest, UnbiasedOnFullResolutionGrids) {
  // Default population hint at eps = 2 clamps both granularities to the full
  // 16-value domains, so no uniformity error: the estimator must be unbiased.
  const double eps = 2.0;
  const uint64_t n = 4000;
  const Schema schema = TwoDimSchema();
  std::vector<std::vector<uint32_t>> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  Rng data_rng(5);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(16))};
    weights[u] = 1.0 + static_cast<double>(u % 3);
    if (values[u][0] >= 3 && values[u][0] <= 12 && values[u][1] >= 5 &&
        values[u][1] <= 14) {
      truth += weights[u];
    }
  }
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {{3, 12}, {5, 14}};
  const int runs = 40;
  Rng rng(6);
  double sum_est = 0.0;
  double mse = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = HdgMechanism::Create(schema, Params(eps)).ValueOrDie();
    EXPECT_GE(mech->g1(), 16u);  // full resolution per the comment above
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    const double est = mech->EstimateBox(ranges, w).ValueOrDie();
    sum_est += est;
    mse += (est - truth) * (est - truth);
  }
  mse /= runs;
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(mse / runs) + 1e-9);
}

TEST(HdgTest, CoarseGridsStayAccurateOnUniformData) {
  // A tiny population hint forces genuinely coarse cells; within-cell
  // uniformity then holds exactly for uniform data, so partial-cell
  // fractions must keep the estimator centered.
  const uint64_t n = 4000;
  const Schema schema = TwoDimSchema(64, 64);
  auto probe = HdgMechanism::Create(schema, Params(1.0, 200)).ValueOrDie();
  ASSERT_LT(probe->g1(), 64u);  // the hint really coarsened the grid
  std::vector<std::vector<uint32_t>> values(n);
  double truth = 0.0;
  Rng data_rng(7);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(64)),
                 static_cast<uint32_t>(data_rng.UniformInt(64))};
    if (values[u][0] >= 5 && values[u][0] <= 40) truth += 1.0;
  }
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{5, 40}, {0, 63}};
  const int runs = 30;
  Rng rng(8);
  double sum_est = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = HdgMechanism::Create(schema, Params(1.0, 200)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    sum_est += mech->EstimateBox(ranges, w).ValueOrDie();
  }
  // Loose band: the point is the fraction arithmetic, not the noise level.
  EXPECT_NEAR(sum_est / runs, truth, 0.25 * n);
}

TEST(HdgTest, WideQueriesUseTheProductFallback) {
  // Three constrained dimensions exceed the materialized pairs; the greedy
  // cover must still produce a finite, sane estimate.
  const uint64_t n = 3000;
  const Schema schema = ThreeDimSchema();
  auto mech = HdgMechanism::Create(schema, Params(2.0)).ValueOrDie();
  Rng rng(9);
  Rng data_rng(10);
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(16)),
        static_cast<uint32_t>(data_rng.UniformInt(16)),
        static_cast<uint32_t>(data_rng.UniformInt(16))};
    ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values, rng), u).ok());
  }
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{0, 7}, {0, 7}, {0, 7}};
  const double est = mech->EstimateBox(ranges, w).ValueOrDie();
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, static_cast<double>(n));  // clamped per-factor selectivities
  const double bound = mech->VarianceBound(ranges, w).ValueOrDie();
  EXPECT_GT(bound, 0.0);
}

TEST(HdgTest, EstimateBoxValidatesRanges) {
  auto mech = HdgMechanism::Create(TwoDimSchema(), Params(1.0)).ValueOrDie();
  Rng rng(11);
  ASSERT_TRUE(
      mech->AddReport(mech->EncodeUser(std::vector<uint32_t>{0, 0}, rng), 0)
          .ok());
  const WeightVector w = WeightVector::Ones(1);
  const std::vector<Interval> one = {{0, 15}};
  EXPECT_FALSE(mech->EstimateBox(one, w).ok());
  const std::vector<Interval> oob = {{0, 16}, {0, 15}};
  EXPECT_FALSE(mech->EstimateBox(oob, w).ok());
}

TEST(HdgTest, FactoryBuildsIt) {
  auto mech = CreateMechanism(MechanismKind::kHdg, TwoDimSchema(), Params(1.0));
  ASSERT_TRUE(mech.ok());
  EXPECT_EQ(mech.value()->kind(), MechanismKind::kHdg);
  EXPECT_EQ(MechanismKindFromString("hdg").ValueOrDie(), MechanismKind::kHdg);
  EXPECT_EQ(MechanismKindName(MechanismKind::kHdg), "HDG");
}

}  // namespace
}  // namespace ldp
