#include "mech/hi.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/privacy_math.h"
#include "data/generator.h"

namespace ldp {
namespace {

Schema OneDimSchema(uint64_t m) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d", m).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

Schema MixedSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d1", 16).ok());
  EXPECT_TRUE(schema.AddCategorical("d2", 4).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps, uint32_t b = 2) {
  MechanismParams p;
  p.epsilon = eps;
  p.fanout = b;
  p.hash_pool_size = 0;
  return p;
}

TEST(HiMechanismTest, CreateValidates) {
  EXPECT_FALSE(HiMechanism::Create(OneDimSchema(16), Params(0.0)).ok());
  Schema no_dims;
  ASSERT_TRUE(no_dims.AddMeasure("w").ok());
  EXPECT_FALSE(HiMechanism::Create(no_dims, Params(1.0)).ok());
  EXPECT_TRUE(HiMechanism::Create(OneDimSchema(16), Params(1.0)).ok());
}

TEST(HiMechanismTest, BudgetSplitsOverAllLevels) {
  // m = 16, b = 2 -> h = 4 -> 5 levels including the root.
  auto mech = HiMechanism::Create(OneDimSchema(16), Params(1.0)).ValueOrDie();
  EXPECT_EQ(mech->grid().num_level_tuples(), 5u);
  EXPECT_NEAR(mech->per_level_epsilon(), 1.0 / 5.0, 1e-12);
  // Mixed 2-dim: 5 ordinal levels x 2 categorical levels = 10.
  auto mixed = HiMechanism::Create(MixedSchema(), Params(1.0)).ValueOrDie();
  EXPECT_EQ(mixed->grid().num_level_tuples(), 10u);
  EXPECT_NEAR(mixed->per_level_epsilon(), 0.1, 1e-12);
}

TEST(HiMechanismTest, EncodeCoversEveryLevel) {
  auto mech = HiMechanism::Create(MixedSchema(), Params(1.0)).ValueOrDie();
  Rng rng(1);
  const std::vector<uint32_t> values = {7, 2};
  const LdpReport report = mech->EncodeUser(values, rng);
  ASSERT_EQ(report.entries.size(), 10u);
  for (uint32_t g = 0; g < 10; ++g) EXPECT_EQ(report.entries[g].group, g);
  EXPECT_EQ(report.SizeWords(), 10u);
}

TEST(HiMechanismTest, AddReportValidates) {
  auto mech = HiMechanism::Create(OneDimSchema(16), Params(1.0)).ValueOrDie();
  LdpReport bad;
  bad.entries.push_back({0, {}});
  EXPECT_FALSE(mech->AddReport(bad, 0).ok());  // must cover all 5 levels
  EXPECT_EQ(mech->num_reports(), 0u);
}

TEST(HiMechanismTest, EstimateBoxValidatesRanges) {
  auto mech = HiMechanism::Create(OneDimSchema(16), Params(1.0)).ValueOrDie();
  const WeightVector w = WeightVector::Ones(0);
  const std::vector<Interval> too_many = {{0, 3}, {0, 3}};
  EXPECT_FALSE(mech->EstimateBox(too_many, w).ok());
  const std::vector<Interval> bad = {{0, 16}};
  EXPECT_FALSE(mech->EstimateBox(bad, w).ok());
}

// Unbiasedness of the full pipeline (Theorem 6): over repeated collections,
// the mean estimate approaches the exact weighted box total and the MSE
// respects the theorem's bound.
TEST(HiMechanismTest, UnbiasedWithMseWithinTheorem6) {
  const double eps = 2.0;
  const uint64_t m = 16;
  const uint64_t n = 1500;
  const Schema schema = OneDimSchema(m);
  // Fixed data: values spread, weights in [0, 3].
  std::vector<uint32_t> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  double m2_t = 0.0;
  const Interval box{3, 11};
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>((u * 7) % m);
    weights[u] = static_cast<double>(u % 4);
    m2_t += weights[u] * weights[u];
    if (box.Contains(values[u])) truth += weights[u];
  }
  const WeightVector w(weights);

  const int runs = 40;
  Rng rng(9);
  double sum_est = 0.0;
  double sum_sq_err = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = HiMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      const std::vector<uint32_t> vals = {values[u]};
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(vals, rng), u).ok());
    }
    const std::vector<Interval> ranges = {box};
    const double est = mech->EstimateBox(ranges, w).ValueOrDie();
    sum_est += est;
    sum_sq_err += (est - truth) * (est - truth);
  }
  const double bound = Theorem6HiBound(eps, 2, m, m2_t);
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(bound / runs));
  EXPECT_LT(sum_sq_err / runs, bound * 1.5);
}

// 2-dim mixed box with a categorical point constraint (Appendix C).
TEST(HiMechanismTest, MixedDimensionsUnbiased) {
  const double eps = 3.0;
  const uint64_t n = 3000;
  const Schema schema = MixedSchema();
  std::vector<std::vector<uint32_t>> values(n);
  double truth = 0.0;
  Rng data_rng(10);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(4))};
    if (values[u][0] >= 4 && values[u][0] <= 12 && values[u][1] == 2) {
      truth += 1.0;
    }
  }
  const WeightVector w = WeightVector::Ones(n);
  const int runs = 30;
  Rng rng(11);
  double sum_est = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = HiMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    const std::vector<Interval> ranges = {{4, 12}, {2, 2}};
    sum_est += mech->EstimateBox(ranges, w).ValueOrDie();
  }
  const double bound = Theorem8HiBound(eps, 2, 16, 2, 2, n);
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(bound / runs));
}

}  // namespace
}  // namespace ldp
