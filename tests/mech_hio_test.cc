#include "mech/hio.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/privacy_math.h"
#include "mech/hi.h"

namespace ldp {
namespace {

Schema OneDimSchema(uint64_t m) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d", m).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

Schema TwoDimSchema(uint64_t m1, uint64_t m2) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d1", m1).ok());
  EXPECT_TRUE(schema.AddOrdinal("d2", m2).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps, uint32_t b = 2) {
  MechanismParams p;
  p.epsilon = eps;
  p.fanout = b;
  p.hash_pool_size = 0;
  return p;
}

TEST(HioMechanismTest, EncodePicksOneRandomLevel) {
  auto mech = HioMechanism::Create(OneDimSchema(16), Params(1.0)).ValueOrDie();
  Rng rng(1);
  std::vector<int> level_counts(mech->grid().num_level_tuples(), 0);
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const std::vector<uint32_t> values = {5};
    const LdpReport r = mech->EncodeUser(values, rng);
    ASSERT_EQ(r.entries.size(), 1u);
    ASSERT_LT(r.entries[0].group, level_counts.size());
    ++level_counts[r.entries[0].group];
    EXPECT_EQ(r.SizeWords(), 1u);
  }
  // Uniform level choice (Algorithm 2, line 1).
  const double expected = static_cast<double>(trials) / level_counts.size();
  for (size_t j = 0; j < level_counts.size(); ++j) {
    EXPECT_NEAR(level_counts[j], expected, expected * 0.2) << "level " << j;
  }
}

TEST(HioMechanismTest, AddReportValidates) {
  auto mech = HioMechanism::Create(OneDimSchema(16), Params(1.0)).ValueOrDie();
  LdpReport two;
  two.entries.push_back({0, {}});
  two.entries.push_back({1, {}});
  EXPECT_FALSE(mech->AddReport(two, 0).ok());
  LdpReport bad_group;
  bad_group.entries.push_back({99, {}});
  EXPECT_FALSE(mech->AddReport(bad_group, 0).ok());
}

// Unbiasedness and Theorem 7/9-scale error of the full HIO pipeline.
TEST(HioMechanismTest, UnbiasedWithMseWithinTheorem9) {
  const double eps = 1.0;
  const uint64_t m = 16;
  const uint64_t n = 4000;
  const Schema schema = OneDimSchema(m);
  std::vector<uint32_t> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  double m2_t = 0.0;
  const Interval box{3, 11};
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>((u * 5) % m);
    weights[u] = 1.0 + static_cast<double>(u % 3);
    m2_t += weights[u] * weights[u];
    if (box.Contains(values[u])) truth += weights[u];
  }
  const WeightVector w(weights);

  const int runs = 50;
  Rng rng(2);
  double sum_est = 0.0;
  double sum_sq_err = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = HioMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      const std::vector<uint32_t> vals = {values[u]};
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(vals, rng), u).ok());
    }
    const std::vector<Interval> ranges = {box};
    const double est = mech->EstimateBox(ranges, w).ValueOrDie();
    sum_est += est;
    sum_sq_err += (est - truth) * (est - truth);
  }
  // d = 1 under Algorithm 2 (levels {0..h}): Theorem 9 with d = dq = 1.
  const double bound = Theorem9HioBound(eps, 2, m, 1, 1, m2_t);
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(bound / runs));
  EXPECT_LT(sum_sq_err / runs, bound * 1.5);
}

// Section 4.2's headline: HIO beats HI by orders of magnitude. Compare
// empirical MSEs on identical data.
TEST(HioMechanismTest, BeatsHiEmpirically) {
  const double eps = 1.0;
  const uint64_t m = 64;
  const uint64_t n = 3000;
  const Schema schema = OneDimSchema(m);
  std::vector<uint32_t> values(n);
  double truth = 0.0;
  const Interval box{10, 53};
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = static_cast<uint32_t>((u * 13) % m);
    if (box.Contains(values[u])) truth += 1.0;
  }
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {box};

  const int runs = 25;
  Rng rng(3);
  double hi_mse = 0.0;
  double hio_mse = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto hi = HiMechanism::Create(schema, Params(eps)).ValueOrDie();
    auto hio = HioMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      const std::vector<uint32_t> vals = {values[u]};
      ASSERT_TRUE(hi->AddReport(hi->EncodeUser(vals, rng), u).ok());
      ASSERT_TRUE(hio->AddReport(hio->EncodeUser(vals, rng), u).ok());
    }
    const double e1 = hi->EstimateBox(ranges, w).ValueOrDie() - truth;
    const double e2 = hio->EstimateBox(ranges, w).ValueOrDie() - truth;
    hi_mse += e1 * e1;
    hio_mse += e2 * e2;
  }
  EXPECT_LT(hio_mse, hi_mse);  // typically ~10x better at m = 64, b = 2
}

TEST(HioMechanismTest, TwoDimUnbiased) {
  const double eps = 2.0;
  const uint64_t n = 6000;
  const Schema schema = TwoDimSchema(16, 8);
  std::vector<std::vector<uint32_t>> values(n);
  double truth = 0.0;
  Rng data_rng(4);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(8))};
    if (values[u][0] >= 2 && values[u][0] <= 13 && values[u][1] >= 1 &&
        values[u][1] <= 6) {
      truth += 1.0;
    }
  }
  const WeightVector w = WeightVector::Ones(n);
  const int runs = 40;
  Rng rng(5);
  double sum_est = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = HioMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    const std::vector<Interval> ranges = {{2, 13}, {1, 6}};
    sum_est += mech->EstimateBox(ranges, w).ValueOrDie();
  }
  const double bound = Theorem9HioBound(eps, 2, 16, 2, 2, n);
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(bound / runs));
}

TEST(HioMechanismTest, EstimateCellMatchesBoxForAlignedRange) {
  // A box that is exactly one hierarchy node must produce the same estimate
  // through EstimateBox and EstimateCell.
  const Schema schema = OneDimSchema(16);
  auto mech = HioMechanism::Create(schema, Params(1.0)).ValueOrDie();
  Rng rng(6);
  for (uint64_t u = 0; u < 500; ++u) {
    const std::vector<uint32_t> vals = {static_cast<uint32_t>(u % 16)};
    ASSERT_TRUE(mech->AddReport(mech->EncodeUser(vals, rng), u).ok());
  }
  const WeightVector w = WeightVector::Ones(500);
  // [8, 11] is node (level 2, index 2) in the b=2 hierarchy over 16 values.
  const std::vector<Interval> ranges = {{8, 11}};
  EXPECT_NEAR(mech->EstimateBox(ranges, w).ValueOrDie(),
              mech->EstimateCell(2, 2, w), 1e-9);
}

}  // namespace
}  // namespace ldp
