// Empirical verification of the eps-LDP guarantee (Definition 1) for every
// mechanism's encoder: on a tiny configuration where the full report space
// is enumerable, the Monte-Carlo estimate of Pr[A(t) = o] must satisfy
// Pr[A(t) = o] <= e^eps * Pr[A(t') = o] for all inputs t, t' and outputs o
// (up to sampling slack).

#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "mech/factory.h"

namespace ldp {
namespace {

std::string Serialize(const LdpReport& report) {
  std::ostringstream os;
  for (const auto& e : report.entries) {
    os << e.group << ":" << e.fo.seed << ":" << e.fo.value << ";";
  }
  return os.str();
}

using Distribution = std::map<std::string, double>;

Distribution EncodeDistribution(const Mechanism& mech,
                                const std::vector<uint32_t>& values,
                                int trials, Rng& rng) {
  std::map<std::string, int> counts;
  for (int i = 0; i < trials; ++i) {
    ++counts[Serialize(mech.EncodeUser(values, rng))];
  }
  Distribution dist;
  for (const auto& [key, count] : counts) {
    dist[key] = static_cast<double>(count) / trials;
  }
  return dist;
}

/// Max over outputs of Pr[A(t)=o] / Pr[A(t')=o], restricted to outputs with
/// enough mass for a stable Monte-Carlo ratio.
double MaxLikelihoodRatio(const Distribution& a, const Distribution& b,
                          double min_mass) {
  double worst = 0.0;
  for (const auto& [key, pa] : a) {
    if (pa < min_mass) continue;
    const auto it = b.find(key);
    // An output reachable from t must be reachable from t' too, or LDP is
    // violated outright.
    EXPECT_NE(it, b.end()) << "output unreachable from alternate input";
    if (it == b.end()) return 1e18;
    worst = std::max(worst, pa / it->second);
  }
  return worst;
}

void CheckLdp(MechanismKind kind, const Schema& schema, double eps,
              const std::vector<std::vector<uint32_t>>& inputs, int trials,
              uint64_t seed) {
  MechanismParams params;
  params.epsilon = eps;
  params.fanout = 2;
  params.hash_pool_size = 2;  // tiny report space for stable estimates
  auto mech = CreateMechanism(kind, schema, params).ValueOrDie();
  Rng rng(seed);
  std::vector<Distribution> dists;
  for (const auto& input : inputs) {
    dists.push_back(EncodeDistribution(*mech, input, trials, rng));
  }
  const double budget = std::exp(eps);
  for (size_t i = 0; i < dists.size(); ++i) {
    for (size_t j = 0; j < dists.size(); ++j) {
      if (i == j) continue;
      const double ratio = MaxLikelihoodRatio(dists[i], dists[j],
                                              /*min_mass=*/0.002);
      EXPECT_LE(ratio, budget * 1.30)
          << MechanismKindName(kind) << ": inputs " << i << " vs " << j;
    }
  }
}

Schema TinyOneDim() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d", 4).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

Schema TinyTwoDim() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d", 4).ok());
  EXPECT_TRUE(schema.AddCategorical("c", 2).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

TEST(LdpPropertyTest, HioOneDim) {
  CheckLdp(MechanismKind::kHio, TinyOneDim(), 1.0,
           {{0}, {1}, {3}}, 400000, 101);
}

TEST(LdpPropertyTest, MgOneDim) {
  CheckLdp(MechanismKind::kMg, TinyOneDim(), 1.0, {{0}, {2}}, 400000, 102);
}

TEST(LdpPropertyTest, HiOneDim) {
  // HI sends a report per level; the joint output space is larger, so use a
  // 2-value domain (3 levels with b=2... m=4 -> h=2 -> 3 levels).
  CheckLdp(MechanismKind::kHi, TinyOneDim(), 2.0, {{0}, {3}}, 600000, 103);
}

TEST(LdpPropertyTest, ScOneDim) {
  CheckLdp(MechanismKind::kSc, TinyOneDim(), 2.0, {{0}, {3}}, 600000, 104);
}

TEST(LdpPropertyTest, HioTwoDim) {
  CheckLdp(MechanismKind::kHio, TinyTwoDim(), 1.0,
           {{0, 0}, {3, 1}, {2, 0}}, 400000, 105);
}

// Changing the input must actually change the output distribution (the
// encoder is not vacuously private by ignoring its input).
TEST(LdpPropertyTest, EncoderIsInformative) {
  MechanismParams params;
  params.epsilon = 3.0;
  params.fanout = 2;
  params.hash_pool_size = 2;
  auto mech =
      CreateMechanism(MechanismKind::kHio, TinyOneDim(), params).ValueOrDie();
  Rng rng(106);
  const Distribution d0 = EncodeDistribution(*mech, {0}, 200000, rng);
  const Distribution d3 = EncodeDistribution(*mech, {3}, 200000, rng);
  double l1 = 0.0;
  for (const auto& [key, p] : d0) {
    const auto it = d3.find(key);
    l1 += std::abs(p - (it == d3.end() ? 0.0 : it->second));
  }
  EXPECT_GT(l1, 0.05);
}

}  // namespace
}  // namespace ldp
