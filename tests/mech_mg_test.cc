#include "mech/mg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/privacy_math.h"

namespace ldp {
namespace {

Schema TwoDimSchema(uint64_t m1, uint64_t m2) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d1", m1).ok());
  EXPECT_TRUE(schema.AddOrdinal("d2", m2).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps) {
  MechanismParams p;
  p.epsilon = eps;
  p.hash_pool_size = 0;
  return p;
}

TEST(MgMechanismTest, CrossProductDomain) {
  auto mech = MgMechanism::Create(TwoDimSchema(16, 8), Params(1.0)).ValueOrDie();
  EXPECT_EQ(mech->total_cells(), 128u);
}

TEST(MgMechanismTest, CreateRejectsHugeDomains) {
  Schema schema;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(schema.AddOrdinal("d" + std::to_string(i), 1 << 12).ok());
  }
  ASSERT_TRUE(schema.AddMeasure("w").ok());
  EXPECT_FALSE(MgMechanism::Create(schema, Params(1.0)).ok());
}

TEST(MgMechanismTest, SingleReportPerUser) {
  auto mech = MgMechanism::Create(TwoDimSchema(16, 8), Params(1.0)).ValueOrDie();
  Rng rng(1);
  const std::vector<uint32_t> values = {5, 3};
  const LdpReport r = mech->EncodeUser(values, rng);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].group, 0u);
  EXPECT_EQ(r.SizeWords(), 1u);
}

TEST(MgMechanismTest, AddReportValidates) {
  auto mech = MgMechanism::Create(TwoDimSchema(16, 8), Params(1.0)).ValueOrDie();
  LdpReport bad;
  bad.entries.push_back({1, {}});
  EXPECT_FALSE(mech->AddReport(bad, 0).ok());
  LdpReport two;
  two.entries.push_back({0, {}});
  two.entries.push_back({0, {}});
  EXPECT_FALSE(mech->AddReport(two, 0).ok());
}

TEST(MgMechanismTest, EstimateBoxValidates) {
  auto mech = MgMechanism::Create(TwoDimSchema(16, 8), Params(1.0)).ValueOrDie();
  const WeightVector w = WeightVector::Ones(0);
  const std::vector<Interval> wrong = {{0, 15}};
  EXPECT_FALSE(mech->EstimateBox(wrong, w).ok());
  const std::vector<Interval> bad = {{0, 16}, {0, 7}};
  EXPECT_FALSE(mech->EstimateBox(bad, w).ok());
  const std::vector<Interval> empty = {{3, 2}, {0, 7}};
  EXPECT_FALSE(mech->EstimateBox(empty, w).ok());
}

TEST(MgMechanismTest, BoxCellCapEnforced) {
  Schema schema;
  ASSERT_TRUE(schema.AddOrdinal("d1", 1 << 13).ok());
  ASSERT_TRUE(schema.AddOrdinal("d2", 1 << 13).ok());
  ASSERT_TRUE(schema.AddMeasure("w").ok());
  auto mech = MgMechanism::Create(schema, Params(1.0)).ValueOrDie();
  Rng rng(1);
  const std::vector<uint32_t> values = {0, 0};
  ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values, rng), 0).ok());
  const WeightVector w = WeightVector::Ones(1);
  const std::vector<Interval> huge = {{0, (1 << 13) - 1}, {0, (1 << 13) - 1}};
  const auto r = mech->EstimateBox(huge, w);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// Unbiasedness of the marginal baseline (eq. 10) and its error's linear
// growth in the number of covered cells (eq. 11).
TEST(MgMechanismTest, UnbiasedAndErrorGrowsWithBox) {
  const double eps = 1.0;
  const uint64_t n = 3000;
  const Schema schema = TwoDimSchema(8, 8);
  std::vector<std::vector<uint32_t>> values(n);
  std::vector<double> weights(n);
  double truth_small = 0.0;
  double truth_large = 0.0;
  double m2_t = 0.0;
  Rng data_rng(2);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(8)),
                 static_cast<uint32_t>(data_rng.UniformInt(8))};
    weights[u] = 1.0 + static_cast<double>(u % 2);
    m2_t += weights[u] * weights[u];
    if (values[u][0] <= 1 && values[u][1] <= 1) truth_small += weights[u];
    if (values[u][0] <= 5 && values[u][1] <= 5) truth_large += weights[u];
  }
  const WeightVector w(weights);
  const std::vector<Interval> small_box = {{0, 1}, {0, 1}};   // 4 cells
  const std::vector<Interval> large_box = {{0, 5}, {0, 5}};   // 36 cells

  const int runs = 40;
  Rng rng(3);
  double sum_small = 0.0;
  double sum_large = 0.0;
  double mse_small = 0.0;
  double mse_large = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = MgMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    const double es = mech->EstimateBox(small_box, w).ValueOrDie();
    const double el = mech->EstimateBox(large_box, w).ValueOrDie();
    sum_small += es;
    sum_large += el;
    mse_small += (es - truth_small) * (es - truth_small);
    mse_large += (el - truth_large) * (el - truth_large);
  }
  mse_small /= runs;
  mse_large /= runs;
  // Unbiased on both boxes.
  const double var_bound = MarginalBaselineVariance(eps, 36.0, m2_t);
  EXPECT_NEAR(sum_small / runs, truth_small,
              4.0 * std::sqrt(var_bound / runs));
  EXPECT_NEAR(sum_large / runs, truth_large,
              4.0 * std::sqrt(var_bound / runs));
  // Error grows roughly linearly with the cell count: 36/4 = 9x. Allow wide
  // statistical slack but demand a clear gap.
  EXPECT_GT(mse_large, mse_small * 2.0);
}

}  // namespace
}  // namespace ldp
