#include "mech/quadtree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mech/factory.h"
#include "mech/hio.h"

namespace ldp {
namespace {

Schema TwoDimSchema(uint64_t m1, uint64_t m2) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("x", m1).ok());
  EXPECT_TRUE(schema.AddOrdinal("y", m2).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps) {
  MechanismParams p;
  p.epsilon = eps;
  p.hash_pool_size = 0;
  return p;
}

TEST(QuadTreeTest, CreateValidates) {
  EXPECT_FALSE(
      QuadTreeMechanism::Create(TwoDimSchema(16, 16), Params(0.0)).ok());
  Schema one_dim;
  ASSERT_TRUE(one_dim.AddOrdinal("x", 16).ok());
  ASSERT_TRUE(one_dim.AddMeasure("w").ok());
  EXPECT_FALSE(QuadTreeMechanism::Create(one_dim, Params(1.0)).ok());
  Schema with_cat;
  ASSERT_TRUE(with_cat.AddOrdinal("x", 16).ok());
  ASSERT_TRUE(with_cat.AddCategorical("c", 4).ok());
  ASSERT_TRUE(with_cat.AddMeasure("w").ok());
  EXPECT_FALSE(QuadTreeMechanism::Create(with_cat, Params(1.0)).ok());
}

TEST(QuadTreeTest, HeightCoversDomains) {
  auto mech =
      QuadTreeMechanism::Create(TwoDimSchema(16, 16), Params(1.0)).ValueOrDie();
  EXPECT_EQ(mech->height(), 4);
  EXPECT_EQ(mech->side(), 16u);
  auto padded =
      QuadTreeMechanism::Create(TwoDimSchema(100, 30), Params(1.0)).ValueOrDie();
  EXPECT_EQ(padded->height(), 7);  // 128 covers both axes
}

TEST(QuadTreeTest, EncodePicksUniformLevel) {
  auto mech =
      QuadTreeMechanism::Create(TwoDimSchema(16, 16), Params(1.0)).ValueOrDie();
  Rng rng(1);
  std::vector<int> counts(mech->height() + 1, 0);
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const std::vector<uint32_t> values = {7, 9};
    const LdpReport r = mech->EncodeUser(values, rng);
    ASSERT_EQ(r.entries.size(), 1u);
    ASSERT_LE(r.entries[0].group, static_cast<uint32_t>(mech->height()));
    ++counts[r.entries[0].group];
  }
  const double expected = static_cast<double>(trials) / counts.size();
  for (size_t j = 0; j < counts.size(); ++j) {
    EXPECT_NEAR(counts[j], expected, expected * 0.25) << "level " << j;
  }
}

TEST(QuadTreeTest, AddReportValidates) {
  auto mech =
      QuadTreeMechanism::Create(TwoDimSchema(16, 16), Params(1.0)).ValueOrDie();
  LdpReport bad;
  bad.entries.push_back({99, {}});
  EXPECT_FALSE(mech->AddReport(bad, 0).ok());
  LdpReport empty;
  EXPECT_FALSE(mech->AddReport(empty, 0).ok());
}

TEST(QuadTreeTest, EstimateBoxValidates) {
  auto mech =
      QuadTreeMechanism::Create(TwoDimSchema(16, 16), Params(1.0)).ValueOrDie();
  const WeightVector w = WeightVector::Ones(0);
  const std::vector<Interval> one = {{0, 15}};
  EXPECT_FALSE(mech->EstimateBox(one, w).ok());
  const std::vector<Interval> oob = {{0, 16}, {0, 15}};
  EXPECT_FALSE(mech->EstimateBox(oob, w).ok());
}

TEST(QuadTreeTest, UnbiasedOnTwoDimBox) {
  const double eps = 2.0;
  const uint64_t n = 4000;
  const Schema schema = TwoDimSchema(16, 16);
  std::vector<std::vector<uint32_t>> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  Rng data_rng(2);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(16))};
    weights[u] = 1.0 + static_cast<double>(u % 3);
    if (values[u][0] >= 3 && values[u][0] <= 12 && values[u][1] >= 5 &&
        values[u][1] <= 14) {
      truth += weights[u];
    }
  }
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {{3, 12}, {5, 14}};
  const int runs = 40;
  Rng rng(3);
  double sum_est = 0.0;
  double mse = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = QuadTreeMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    const double est = mech->EstimateBox(ranges, w).ValueOrDie();
    sum_est += est;
    mse += (est - truth) * (est - truth);
  }
  mse /= runs;
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(mse / runs) + 1e-9);
}

// Section 7's claim: an unaligned 2-dim box needs a number of quadtree
// nodes linear in the domain side, versus HIO's polylogarithmic
// decomposition — so on large domains the QuadTree error is larger. (On
// *small* domains the quadtree's mere h+1 levels make it competitive; the
// gap is a large-domain phenomenon, which the spatial ablation bench sweeps.)
TEST(QuadTreeTest, DecompositionGrowsLinearlyInDomainSide) {
  uint64_t prev_nodes = 0;
  for (const uint64_t m : {64ull, 256ull, 1024ull}) {
    const Schema schema = TwoDimSchema(m, m);
    auto qt = QuadTreeMechanism::Create(schema, Params(1.0)).ValueOrDie();
    MechanismParams hio_params = Params(1.0);
    hio_params.fanout = 2;
    auto hio = HioMechanism::Create(schema, hio_params).ValueOrDie();
    // A maximally unaligned box: odd offsets, just over half the domain.
    const std::vector<Interval> ranges = {{1, m / 2 + 2}, {3, m / 2 + 4}};
    const auto qt_nodes = qt->DecomposeBox(ranges).ValueOrDie();
    std::vector<SubQuery> hio_subs;
    ASSERT_TRUE(hio->grid().DecomposeBox(ranges, &hio_subs).ok());
    // QuadTree needs boundary-many nodes; HIO stays polylogarithmic.
    EXPECT_GT(qt_nodes.size(), m / 2) << "m=" << m;
    EXPECT_LT(hio_subs.size(), 4 * 22 * 22) << "m=" << m;
    EXPECT_GT(qt_nodes.size(), hio_subs.size()) << "m=" << m;
    // Linear growth: quadrupling the side at least doubles the node count.
    if (prev_nodes > 0) {
      EXPECT_GT(qt_nodes.size(), 2 * prev_nodes);
    }
    prev_nodes = qt_nodes.size();
  }
}

TEST(QuadTreeTest, WorseThanHioOnLargeUnalignedDomains) {
  const double eps = 1.0;
  const uint64_t n = 3000;
  const uint64_t m = 512;
  const Schema schema = TwoDimSchema(m, m);
  std::vector<std::vector<uint32_t>> values(n);
  double truth = 0.0;
  const Interval bx{7, 7 + 255};
  const Interval by{9, 9 + 255};
  Rng data_rng(4);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(m)),
                 static_cast<uint32_t>(data_rng.UniformInt(m))};
    if (bx.Contains(values[u][0]) && by.Contains(values[u][1])) truth += 1.0;
  }
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {bx, by};

  MechanismParams hio_params = Params(eps);
  hio_params.fanout = 2;  // same fan-out as the quadtree for a fair fight
  const int runs = 15;
  Rng rng(5);
  double qt_mse = 0.0;
  double hio_mse = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto qt = QuadTreeMechanism::Create(schema, Params(eps)).ValueOrDie();
    auto hio = HioMechanism::Create(schema, hio_params).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(qt->AddReport(qt->EncodeUser(values[u], rng), u).ok());
      ASSERT_TRUE(hio->AddReport(hio->EncodeUser(values[u], rng), u).ok());
    }
    const double e1 = qt->EstimateBox(ranges, w).ValueOrDie() - truth;
    const double e2 = hio->EstimateBox(ranges, w).ValueOrDie() - truth;
    qt_mse += e1 * e1;
    hio_mse += e2 * e2;
  }
  EXPECT_GT(qt_mse, hio_mse);
}

TEST(QuadTreeTest, FactoryBuildsIt) {
  const Schema schema = TwoDimSchema(16, 16);
  auto mech =
      CreateMechanism(MechanismKind::kQuadTree, schema, Params(1.0));
  ASSERT_TRUE(mech.ok());
  EXPECT_EQ(mech.value()->kind(), MechanismKind::kQuadTree);
  EXPECT_EQ(MechanismKindFromString("quadtree").ValueOrDie(),
            MechanismKind::kQuadTree);
  EXPECT_EQ(MechanismKindName(MechanismKind::kQuadTree), "QuadTree");
}

}  // namespace
}  // namespace ldp
