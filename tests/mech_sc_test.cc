#include "mech/sc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/privacy_math.h"

namespace ldp {
namespace {

Schema FourDimSchema(uint64_t m) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d1", m).ok());
  EXPECT_TRUE(schema.AddOrdinal("d2", m).ok());
  EXPECT_TRUE(schema.AddCategorical("c1", 4).ok());
  EXPECT_TRUE(schema.AddCategorical("c2", 3).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps, uint32_t b = 2) {
  MechanismParams p;
  p.epsilon = eps;
  p.fanout = b;
  p.hash_pool_size = 0;
  return p;
}

TEST(ScMechanismTest, RequiresOlh) {
  MechanismParams p = Params(1.0);
  p.fo_kind = FoKind::kGrr;
  EXPECT_FALSE(ScMechanism::Create(FourDimSchema(16), p).ok());
}

TEST(ScMechanismTest, BudgetSplitsOverDimLevels) {
  // m=16, b=2 -> h=4 per ordinal dim; categorical h=1. Total = 4+4+1+1 = 10.
  auto mech = ScMechanism::Create(FourDimSchema(16), Params(1.0)).ValueOrDie();
  EXPECT_EQ(mech->num_groups(), 10);
  EXPECT_NEAR(mech->per_report_epsilon(), 0.1, 1e-12);
}

TEST(ScMechanismTest, EncodeReportsEveryDimLevel) {
  auto mech = ScMechanism::Create(FourDimSchema(16), Params(1.0)).ValueOrDie();
  Rng rng(1);
  const std::vector<uint32_t> values = {3, 9, 2, 1};
  const LdpReport report = mech->EncodeUser(values, rng);
  EXPECT_EQ(report.entries.size(), 10u);
  EXPECT_EQ(report.SizeWords(), 10u);
}

TEST(ScMechanismTest, AddReportValidates) {
  auto mech = ScMechanism::Create(FourDimSchema(16), Params(1.0)).ValueOrDie();
  LdpReport bad;
  bad.entries.push_back({0, {}});
  EXPECT_FALSE(mech->AddReport(bad, 0).ok());
}

TEST(ScMechanismTest, FullDomainBoxIsExactTotalWeight) {
  // With every range at the root ('*'), the conjunctive product is empty and
  // the estimate degenerates to the exact public total — zero noise.
  const Schema schema = FourDimSchema(16);
  auto mech = ScMechanism::Create(schema, Params(1.0)).ValueOrDie();
  Rng rng(2);
  std::vector<double> weights;
  for (uint64_t u = 0; u < 300; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(u % 16), static_cast<uint32_t>((u / 2) % 16),
        static_cast<uint32_t>(u % 4), static_cast<uint32_t>(u % 3)};
    ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values, rng), u).ok());
    weights.push_back(static_cast<double>(u % 5));
  }
  const WeightVector w(weights);
  const std::vector<Interval> full = {{0, 15}, {0, 15}, {0, 3}, {0, 2}};
  EXPECT_NEAR(mech->EstimateBox(full, w).ValueOrDie(), w.total(), 1e-6);
}

// Unbiasedness of the conjunctive estimator on a 2-of-4-dims query
// (Theorem 11 / Proposition 10).
TEST(ScMechanismTest, LowDimQueryUnbiased) {
  const double eps = 4.0;
  const uint64_t n = 4000;
  const Schema schema = FourDimSchema(8);
  std::vector<std::vector<uint32_t>> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  Rng data_rng(3);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(8)),
                 static_cast<uint32_t>(data_rng.UniformInt(8)),
                 static_cast<uint32_t>(data_rng.UniformInt(4)),
                 static_cast<uint32_t>(data_rng.UniformInt(3))};
    weights[u] = 1.0 + static_cast<double>(u % 2);
    // Query: d1 in [2,5] AND c1 = 1 (dims d2, c2 unconstrained).
    if (values[u][0] >= 2 && values[u][0] <= 5 && values[u][2] == 1) {
      truth += weights[u];
    }
  }
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {{2, 5}, {0, 7}, {1, 1}, {0, 2}};

  const int runs = 40;
  Rng rng(4);
  double sum_est = 0.0;
  std::vector<double> errors;
  for (int run = 0; run < runs; ++run) {
    auto mech = ScMechanism::Create(schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    const double est = mech->EstimateBox(ranges, w).ValueOrDie();
    sum_est += est;
    errors.push_back(est - truth);
  }
  double mse = 0.0;
  for (const double e : errors) mse += e * e;
  mse /= runs;
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(mse / runs) + 1e-9);
}

TEST(ScMechanismTest, EstimateBoxValidatesRanges) {
  auto mech = ScMechanism::Create(FourDimSchema(8), Params(1.0)).ValueOrDie();
  const WeightVector w = WeightVector::Ones(0);
  const std::vector<Interval> wrong_arity = {{0, 7}};
  EXPECT_FALSE(mech->EstimateBox(wrong_arity, w).ok());
  const std::vector<Interval> out_of_domain = {{0, 8}, {0, 7}, {0, 3}, {0, 2}};
  EXPECT_FALSE(mech->EstimateBox(out_of_domain, w).ok());
}

// The conjunctive-estimator factors satisfy E[c(A) | B] = B: over encoding
// randomness, a user holding the value averages to 1, any other user to 0.
TEST(ScMechanismTest, ConjunctiveFactorsCalibrated) {
  const Schema schema = FourDimSchema(8);
  const double eps = 2.0;
  const uint64_t n = 8000;
  // All users hold d1 = 3; half hold c1 = 1, half c1 = 0.
  auto mech = ScMechanism::Create(schema, Params(eps)).ValueOrDie();
  Rng rng(5);
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {3, 0, static_cast<uint32_t>(u % 2),
                                          0};
    ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values, rng), u).ok());
  }
  const WeightVector w = WeightVector::Ones(n);
  // Query c1 = 1 only: truth = n/2.
  const std::vector<Interval> ranges = {{0, 7}, {0, 7}, {1, 1}, {0, 2}};
  const double est = mech->EstimateBox(ranges, w).ValueOrDie();
  // Single mechanism instance: allow a few standard deviations of the
  // Theorem 11-scale noise.
  EXPECT_NEAR(est, n / 2.0, n * 0.35);
}

}  // namespace
}  // namespace ldp
