// Multi-mechanism deployments: MultiMechanism's user-partitioned report
// population, per-plan dispatch, and the planner's per-query mechanism
// choice (the cost model picking different estimators for different query
// shapes on one engine).

#include "mech/multi.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "engine/engine.h"
#include "mech/advisor.h"
#include "obs/metrics.h"

namespace ldp {
namespace {

Schema TwoDimSchema(uint64_t m1 = 16, uint64_t m2 = 16) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("x", m1).ok());
  EXPECT_TRUE(schema.AddOrdinal("y", m2).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps) {
  MechanismParams p;
  p.epsilon = eps;
  p.hash_pool_size = 0;
  return p;
}

std::vector<MechanismKind> Kinds(std::initializer_list<MechanismKind> k) {
  return std::vector<MechanismKind>(k);
}

TEST(MultiMechanismTest, CreateValidates) {
  const Schema schema = TwoDimSchema();
  EXPECT_FALSE(MultiMechanism::Create(schema, Params(1.0), Kinds({})).ok());
  EXPECT_FALSE(MultiMechanism::Create(
                   schema, Params(1.0),
                   Kinds({MechanismKind::kHio, MechanismKind::kHio}))
                   .ok());
  auto multi = MultiMechanism::Create(
                   schema, Params(1.0),
                   Kinds({MechanismKind::kHio, MechanismKind::kMg}))
                   .ValueOrDie();
  EXPECT_EQ(multi->num_sub_mechanisms(), 2);
  EXPECT_EQ(multi->kinds(),
            Kinds({MechanismKind::kHio, MechanismKind::kMg}));
  // Group id space is the concatenation of the subs' spaces.
  EXPECT_EQ(multi->NumReportGroups(), multi->sub(0).NumReportGroups() +
                                          multi->sub(1).NumReportGroups());
}

TEST(MultiMechanismTest, ReportsRouteToExactlyOneCohort) {
  const Schema schema = TwoDimSchema();
  auto multi = MultiMechanism::Create(
                   schema, Params(2.0),
                   Kinds({MechanismKind::kHio, MechanismKind::kMg}))
                   .ValueOrDie();
  Rng rng(1);
  const uint64_t n = 2000;
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(rng.UniformInt(16)),
        static_cast<uint32_t>(rng.UniformInt(16))};
    ASSERT_TRUE(multi->AddReport(multi->EncodeUser(values, rng), u).ok());
  }
  EXPECT_EQ(multi->num_reports(), n);
  // Every user landed in exactly one cohort; the uniform draw fills both.
  EXPECT_EQ(multi->sub(0).num_reports() + multi->sub(1).num_reports(), n);
  EXPECT_GT(multi->sub(0).num_reports(), n / 4);
  EXPECT_GT(multi->sub(1).num_reports(), n / 4);
}

TEST(MultiMechanismTest, ValidateRejectsCrossSubAndBadGroups) {
  const Schema schema = TwoDimSchema();
  auto multi = MultiMechanism::Create(
                   schema, Params(1.0),
                   Kinds({MechanismKind::kHio, MechanismKind::kMg}))
                   .ValueOrDie();
  LdpReport bad_group;
  bad_group.entries.push_back(
      {static_cast<uint32_t>(multi->NumReportGroups()), {}});
  EXPECT_FALSE(multi->ValidateReport(bad_group).ok());
  LdpReport empty;
  EXPECT_FALSE(multi->AddReport(empty, 0).ok());

  // A report spanning two sub-mechanisms' group ranges is structurally
  // invalid: a user reports to exactly one cohort.
  Rng rng(2);
  const std::vector<uint32_t> values = {3, 7};
  LdpReport a, b;
  const uint64_t mg_offset = multi->sub(0).NumReportGroups();
  do {
    a = multi->EncodeUser(values, rng);
  } while (a.entries[0].group >= mg_offset);
  do {
    b = multi->EncodeUser(values, rng);
  } while (b.entries[0].group < mg_offset);
  LdpReport cross = a;
  cross.entries.push_back(b.entries[0]);
  EXPECT_FALSE(multi->ValidateReport(cross).ok());
}

TEST(MultiMechanismTest, ShardMergeMatchesDirectIngestBitwise) {
  const Schema schema = TwoDimSchema();
  const uint64_t n = 1000;
  auto direct = MultiMechanism::Create(
                    schema, Params(2.0),
                    Kinds({MechanismKind::kHio, MechanismKind::kMg}))
                    .ValueOrDie();
  std::vector<LdpReport> reports;
  Rng rng(3);
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(rng.UniformInt(16)),
        static_cast<uint32_t>(rng.UniformInt(16))};
    reports.push_back(direct->EncodeUser(values, rng));
  }
  for (uint64_t u = 0; u < n; ++u) {
    ASSERT_TRUE(direct->AddReport(reports[u], u).ok());
  }
  auto merged = MultiMechanism::Create(
                    schema, Params(2.0),
                    Kinds({MechanismKind::kHio, MechanismKind::kMg}))
                    .ValueOrDie();
  auto shard_a = merged->NewShard().ValueOrDie();
  auto shard_b = merged->NewShard().ValueOrDie();
  for (uint64_t u = 0; u < n / 2; ++u) {
    ASSERT_TRUE(shard_a->AddReport(reports[u], u).ok());
  }
  for (uint64_t u = n / 2; u < n; ++u) {
    ASSERT_TRUE(shard_b->AddReport(reports[u], u).ok());
  }
  ASSERT_TRUE(merged->Merge(std::move(*shard_a)).ok());
  ASSERT_TRUE(merged->Merge(std::move(*shard_b)).ok());
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{2, 9}, {0, 15}};
  for (const MechanismKind kind :
       {MechanismKind::kHio, MechanismKind::kMg}) {
    EXPECT_EQ(direct->EstimateBoxWith(kind, ranges, w).ValueOrDie(),
              merged->EstimateBoxWith(kind, ranges, w).ValueOrDie());
  }
}

TEST(MultiMechanismTest, EstimateBoxWithIsUnbiasedPerSub) {
  // Horvitz-Thompson over the cohort: k x the sub's cohort estimate must be
  // centered on the population total for every registered kind.
  const double eps = 2.0;
  const uint64_t n = 4000;
  const Schema schema = TwoDimSchema();
  std::vector<std::vector<uint32_t>> values(n);
  double truth = 0.0;
  Rng data_rng(4);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(16))};
    if (values[u][0] >= 3 && values[u][0] <= 12) truth += 1.0;
  }
  const WeightVector w = WeightVector::Ones(n);
  const std::vector<Interval> ranges = {{3, 12}, {0, 15}};
  const int runs = 30;
  Rng rng(5);
  double sum_hio = 0.0, mse_hio = 0.0;
  double sum_mg = 0.0, mse_mg = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto multi = MultiMechanism::Create(
                     schema, Params(eps),
                     Kinds({MechanismKind::kHio, MechanismKind::kMg}))
                     .ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(
          multi->AddReport(multi->EncodeUser(values[u], rng), u).ok());
    }
    const double hio =
        multi->EstimateBoxWith(MechanismKind::kHio, ranges, w).ValueOrDie();
    const double mg =
        multi->EstimateBoxWith(MechanismKind::kMg, ranges, w).ValueOrDie();
    sum_hio += hio;
    mse_hio += (hio - truth) * (hio - truth);
    sum_mg += mg;
    mse_mg += (mg - truth) * (mg - truth);
  }
  mse_hio /= runs;
  mse_mg /= runs;
  EXPECT_NEAR(sum_hio / runs, truth,
              4.0 * std::sqrt(mse_hio / runs) + 1e-9);
  EXPECT_NEAR(sum_mg / runs, truth, 4.0 * std::sqrt(mse_mg / runs) + 1e-9);

  // Dispatch to a kind that was never registered is an error.
  auto multi = MultiMechanism::Create(
                   schema, Params(eps),
                   Kinds({MechanismKind::kHio, MechanismKind::kMg}))
                   .ValueOrDie();
  Rng r2(6);
  ASSERT_TRUE(
      multi->AddReport(multi->EncodeUser(std::vector<uint32_t>{0, 0}, r2), 0)
          .ok());
  EXPECT_FALSE(
      multi->EstimateBoxWith(MechanismKind::kSc, ranges, w).ok());
}

// --- Engine-level: the planner chooses the mechanism per query. ---

Table WideDomainTable(uint64_t n = 2000, uint64_t seed = 91) {
  TableSpec spec;
  spec.dims.push_back({"a", AttributeKind::kSensitiveOrdinal, 1024,
                       ColumnDist::kUniform, 1.0});
  spec.measures.push_back({"m", 0.0, 5.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, seed).ValueOrDie();
}

std::unique_ptr<AnalyticsEngine> MakeMultiEngine(
    const Table& table, std::vector<MechanismKind> kinds,
    int num_threads = 1, bool estimate_cache = true, uint64_t seed = 42) {
  EngineOptions options;
  options.mechanisms = std::move(kinds);
  options.params.epsilon = 2.0;
  options.params.hash_pool_size = 256;
  options.num_threads = num_threads;
  options.enable_estimate_cache = estimate_cache;
  options.seed = seed;
  return AnalyticsEngine::Create(table, options).ValueOrDie();
}

TEST(MechanismSelectionTest, PlannerPicksPerQueryShape) {
  // Section 5.4's turning point on a 1024-value domain at eps = 2: MG wins
  // only for tiny query volumes, HIO otherwise. One engine, two queries,
  // two different chosen mechanisms.
  const Table table = WideDomainTable();
  const auto engine =
      MakeMultiEngine(table, {MechanismKind::kHio, MechanismKind::kMg});

  const Query narrow =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a IN [0, 4]")
          .ValueOrDie();
  const Query wide =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a IN [0, 511]")
          .ValueOrDie();

  const auto narrow_plan = engine->PlanFor(narrow).ValueOrDie();
  EXPECT_EQ(narrow_plan->mechanism, MechanismKind::kMg);
  EXPECT_EQ(narrow_plan->strategy, PlanStrategy::kMgCellStream);

  const auto wide_plan = engine->PlanFor(wide).ValueOrDie();
  EXPECT_EQ(wide_plan->mechanism, MechanismKind::kHio);
  EXPECT_EQ(wide_plan->strategy, PlanStrategy::kDirectLevelGrid);

  // The choice is exactly the cost model's verdict over the recorded
  // candidate scores — the plan carries its own justification.
  for (const auto& plan : {narrow_plan, wide_plan}) {
    ASSERT_EQ(plan->candidates.size(), 2u);
    EXPECT_EQ(plan->candidates[0].kind, MechanismKind::kHio);
    EXPECT_EQ(plan->candidates[1].kind, MechanismKind::kMg);
    EXPECT_EQ(plan->mechanism, ChooseMechanism(plan->candidates));
  }
  EXPECT_LT(narrow_plan->candidates[1].variance,
            narrow_plan->candidates[0].variance);
  EXPECT_LT(wide_plan->candidates[0].variance,
            wide_plan->candidates[1].variance);

  // Both plans execute against the same report population.
  EXPECT_TRUE(engine->Execute(narrow).ok());
  EXPECT_TRUE(engine->Execute(wide).ok());
}

TEST(MechanismSelectionTest, ChoiceCountersTrackPlannerDecisions) {
  const Table table = WideDomainTable();
  const auto engine =
      MakeMultiEngine(table, {MechanismKind::kHio, MechanismKind::kMg});
  Counter* mg = GlobalMetrics().counter("plan.mechanism_choices.MG");
  Counter* hio = GlobalMetrics().counter("plan.mechanism_choices.HIO");
  const uint64_t mg_before = mg->value();
  const uint64_t hio_before = hio->value();
  ASSERT_TRUE(engine->ExecuteSql("SELECT COUNT(*) FROM T WHERE a IN [0, 4]")
                  .ok());
  ASSERT_TRUE(engine->ExecuteSql("SELECT COUNT(*) FROM T WHERE a IN [0, 511]")
                  .ok());
  EXPECT_EQ(mg->value(), mg_before + 1);
  EXPECT_EQ(hio->value(), hio_before + 1);
}

TEST(MechanismSelectionTest, ConfigFingerprintSeparatesMechanismSets) {
  const Table table = WideDomainTable(500);
  const auto hio_only = MakeMultiEngine(table, {MechanismKind::kHio});
  const auto hio_mg =
      MakeMultiEngine(table, {MechanismKind::kHio, MechanismKind::kMg});
  const auto hio_hdg =
      MakeMultiEngine(table, {MechanismKind::kHio, MechanismKind::kHdg});
  EXPECT_NE(hio_only->config_fingerprint(), hio_mg->config_fingerprint());
  EXPECT_NE(hio_mg->config_fingerprint(), hio_hdg->config_fingerprint());

  // A single-entry mechanisms list is the classic single-mechanism engine.
  EngineOptions classic;
  classic.mechanism = MechanismKind::kHio;
  classic.params.epsilon = 2.0;
  classic.params.hash_pool_size = 256;
  const auto single = AnalyticsEngine::Create(table, classic).ValueOrDie();
  EXPECT_EQ(single->config_fingerprint(), hio_only->config_fingerprint());
  // Single-mechanism plans carry no candidate scores (forced choice).
  const Query q =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a <= 5")
          .ValueOrDie();
  EXPECT_TRUE(single->PlanFor(q).ValueOrDie()->candidates.empty());
  EXPECT_FALSE(hio_mg->PlanFor(q).ValueOrDie()->candidates.empty());
}

TEST(MechanismSelectionTest, MultiEngineDeterministicAcrossThreadsAndCache) {
  // The composite population is encoded with the same per-chunk RNG
  // substreams as any mechanism, so a multi-mechanism engine's answers are
  // bit-identical across thread counts and estimate-cache settings.
  const Table table = WideDomainTable(1500);
  const std::vector<const char*> sqls = {
      "SELECT COUNT(*) FROM T WHERE a IN [0, 4]",
      "SELECT COUNT(*) FROM T WHERE a IN [0, 511]",
      "SELECT SUM(m) FROM T WHERE a IN [100, 899]",
  };
  std::vector<double> reference;
  for (const int threads : {1, 2, 8}) {
    for (const bool cache : {true, false}) {
      const auto engine = MakeMultiEngine(
          table, {MechanismKind::kHio, MechanismKind::kMg}, threads, cache);
      std::vector<double> results;
      for (const char* sql : sqls) {
        results.push_back(engine->ExecuteSql(sql).ValueOrDie());
      }
      if (reference.empty()) {
        reference = results;
      } else {
        EXPECT_EQ(results, reference)
            << "threads=" << threads << " cache=" << cache;
      }
    }
  }
}

}  // namespace
}  // namespace ldp
