#include "engine/metrics.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared devs = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStatsTest, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000 / 999, 1e-3);
}

TEST(NormalizedAbsErrorTest, Definition) {
  EXPECT_DOUBLE_EQ(NormalizedAbsError(110.0, 100.0, 1000.0), 0.01);
  EXPECT_DOUBLE_EQ(NormalizedAbsError(90.0, 100.0, 1000.0), 0.01);
  EXPECT_DOUBLE_EQ(NormalizedAbsError(5.0, 5.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedAbsError(1.0, 0.0, 0.0), 0.0);  // guarded
}

TEST(RelativeErrorTest, NormalizesByEstimate) {
  // The paper's MRE divides by |P̄(q)| — the estimate, not the truth.
  EXPECT_DOUBLE_EQ(RelativeError(200.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 200.0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeError(-50.0, -100.0), 1.0);
}

TEST(RelativeErrorTest, GuardsZeroEstimate) {
  const double r = RelativeError(0.0, 5.0);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_DOUBLE_EQ(r, 10.0);  // clipped
}

TEST(RelativeErrorTest, ClipsAtTen) {
  EXPECT_DOUBLE_EQ(RelativeError(1.0, 1000.0), 10.0);
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 150.0), 0.5);  // unclipped path
}

}  // namespace
}  // namespace ldp
