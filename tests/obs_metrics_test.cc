// Unit tests for the observability subsystem (src/obs): sharded counters,
// gauges, fixed-bucket latency histograms, the metrics registry with its
// enabled gate and JSON snapshot, RAII trace spans, and per-query profiles —
// plus the engine-level guarantee that metrics and profiling are purely
// observational (estimates bit-identical with metrics on or off, at any
// thread count).

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ldp {
namespace {

// --- Counter ---------------------------------------------------------------

TEST(CounterTest, AddAndValue) {
  MetricsRegistry registry;
  Counter* c = registry.counter("t.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add(5);
  c->Increment();
  EXPECT_EQ(c->value(), 6u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  MetricsRegistry registry;
  Counter* c = registry.counter("t.concurrent");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(CounterTest, DisabledRegistryDropsIncrements) {
  MetricsRegistry registry;
  Counter* c = registry.counter("t.gated");
  c->Add(3);
  registry.set_enabled(false);
  c->Add(100);
  EXPECT_EQ(c->value(), 3u);
  registry.set_enabled(true);
  c->Add(1);
  EXPECT_EQ(c->value(), 4u);
}

// --- Gauge -----------------------------------------------------------------

TEST(GaugeTest, SetAddAndGate) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("t.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  registry.set_enabled(false);
  g->Set(999);
  g->Add(999);
  EXPECT_EQ(g->value(), 7);
  registry.set_enabled(true);
}

// --- LatencyHistogram ------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i holds [2^i, 2^(i+1)); 0 shares bucket 0 with 1.
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 9u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 10u);
  // Everything at or above 2^41 clamps into the last bucket.
  EXPECT_EQ(LatencyHistogram::BucketOf(1ull << 41),
            LatencyHistogram::kNumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(UINT64_MAX),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(HistogramTest, RecordCountSumAndQuantiles) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.histogram("t.hist");
  EXPECT_EQ(h->QuantileUpperBound(0.5), 0u);  // empty
  // 99 samples in bucket [64, 128), one far outlier in [65536, 131072).
  for (int i = 0; i < 99; ++i) h->Record(100);
  h->Record(100000);
  EXPECT_EQ(h->count(), 100u);
  EXPECT_EQ(h->sum_nanos(), 99u * 100 + 100000);
  EXPECT_EQ(h->bucket(LatencyHistogram::BucketOf(100)), 99u);
  EXPECT_EQ(h->QuantileUpperBound(0.5), 128u);
  // The 99th of 100 samples is still in the low bucket; the max lands in
  // the outlier's bucket.
  EXPECT_EQ(h->QuantileUpperBound(0.99), 128u);
  EXPECT_EQ(h->QuantileUpperBound(1.0), 131072u);
}

TEST(HistogramTest, QuantileDerivesNFromTheBucketSnapshot) {
  // The quantile race regression: QuantileUpperBound used to read count()
  // and the buckets separately, so a Record() landing in between (count
  // bumped, bucket not yet) could leave the scan short of its target and
  // fall through to the max bucket edge. The fix scans one snapshot whose
  // own sum is n — verify the scan is exact at every rank boundary of a
  // known distribution.
  MetricsRegistry registry;
  LatencyHistogram* h = registry.histogram("t.hist_exact");
  // 4 samples in [2,4), 4 in [16,32), 2 in [1024,2048): n = 10.
  for (int i = 0; i < 4; ++i) h->Record(2);
  for (int i = 0; i < 4; ++i) h->Record(20);
  for (int i = 0; i < 2; ++i) h->Record(1500);
  EXPECT_EQ(h->QuantileUpperBound(0.0), 4u);    // rank 1
  EXPECT_EQ(h->QuantileUpperBound(0.34), 4u);   // rank 4 (last of 1st bucket)
  EXPECT_EQ(h->QuantileUpperBound(0.45), 32u);  // rank 5 boundary
  EXPECT_EQ(h->QuantileUpperBound(0.75), 32u);  // rank 7
  EXPECT_EQ(h->QuantileUpperBound(0.89), 2048u);  // rank 9 boundary
  EXPECT_EQ(h->QuantileUpperBound(1.0), 2048u);
  // Out-of-range q clamps instead of under/overflowing the target rank.
  EXPECT_EQ(h->QuantileUpperBound(-0.5), 4u);
  EXPECT_EQ(h->QuantileUpperBound(2.0), 2048u);
}

TEST(HistogramTest, DisabledRegistryDropsRecords) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.histogram("t.hist_gated");
  registry.set_enabled(false);
  h->Record(100);
  EXPECT_EQ(h->count(), 0u);
  registry.set_enabled(true);
}

// --- MetricsRegistry -------------------------------------------------------

TEST(RegistryTest, HandlesAreStableAndDeduplicated) {
  MetricsRegistry registry;
  Counter* a = registry.counter("t.same");
  Counter* b = registry.counter("t.same");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("t.other"), a);
}

TEST(RegistryTest, ResetZeroesEverythingKeepingHandles) {
  MetricsRegistry registry;
  Counter* c = registry.counter("t.c");
  Gauge* g = registry.gauge("t.g");
  LatencyHistogram* h = registry.histogram("t.h");
  c->Add(7);
  g->Set(-2);
  h->Record(50);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum_nanos(), 0u);
  c->Add(1);  // handle still live
  EXPECT_EQ(c->value(), 1u);
}

TEST(RegistryTest, SnapshotAndJson) {
  MetricsRegistry registry;
  registry.counter("t.events")->Add(42);
  registry.gauge("t.depth")->Set(-5);
  registry.histogram("t.lat")->Record(100);

  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("t.events"), 42u);
  EXPECT_EQ(snap.gauges.at("t.depth"), -5);
  const auto& hist = snap.histograms.at("t.lat");
  EXPECT_EQ(hist.count, 1u);
  EXPECT_EQ(hist.sum_nanos, 100u);
  ASSERT_EQ(hist.nonzero.size(), 1u);
  EXPECT_EQ(hist.nonzero[0].first, 128u);  // exclusive upper edge of [64,128)
  EXPECT_EQ(hist.nonzero[0].second, 1u);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"t.events\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"t.depth\":-5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"t.lat\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

TEST(RegistryTest, WriteJsonFileRoundTrips) {
  MetricsRegistry registry;
  registry.counter("t.file")->Add(9);
  const std::string path = ::testing::TempDir() + "/obs_metrics_test.json";
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"t.file\":9"), std::string::npos);
}

// --- TraceSpan / QueryProfile ----------------------------------------------

TEST(TraceSpanTest, RecordsIntoProfileStageAndHistogram) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.histogram("t.span");
  QueryProfile profile;
  {
    TraceSpan span(&profile, QueryProfile::kEstimate, h);
  }
  EXPECT_EQ(profile.stages[QueryProfile::kEstimate].calls, 1u);
  EXPECT_GT(profile.stages[QueryProfile::kEstimate].wall_nanos, 0u);
  EXPECT_EQ(h->count(), 1u);
}

TEST(TraceSpanTest, StopIsIdempotent) {
  QueryProfile profile;
  TraceSpan span(&profile, QueryProfile::kParse);
  span.Stop();
  const uint64_t after_first = profile.stages[QueryProfile::kParse].wall_nanos;
  span.Stop();  // and the destructor makes a third call
  EXPECT_EQ(profile.stages[QueryProfile::kParse].calls, 1u);
  EXPECT_EQ(profile.stages[QueryProfile::kParse].wall_nanos, after_first);
}

TEST(TraceSpanTest, NullTargetsAreANoOp) {
  TraceSpan span(nullptr, QueryProfile::kParse, nullptr);
  span.Stop();  // nothing to assert beyond "does not crash or record"
}

TEST(QueryProfileTest, StageNamesAreDistinct) {
  EXPECT_STREQ(QueryProfile::StageName(QueryProfile::kParse), "parse");
  EXPECT_STREQ(QueryProfile::StageName(QueryProfile::kAggregate), "aggregate");
}

TEST(QueryProfileTest, MergeSumsEveryField) {
  QueryProfile a;
  a.stages[QueryProfile::kParse] = {100, 1};
  a.total_nanos = 500;
  a.ie_terms = 2;
  a.nodes_estimated = 10;
  a.cache_hits = 3;
  a.cache_misses = 7;
  a.cache_epoch_drops = 1;
  a.exec_chunks = 4;
  a.queries = 1;
  QueryProfile b = a;
  b.Merge(a);
  EXPECT_EQ(b.stages[QueryProfile::kParse].wall_nanos, 200u);
  EXPECT_EQ(b.stages[QueryProfile::kParse].calls, 2u);
  EXPECT_EQ(b.total_nanos, 1000u);
  EXPECT_EQ(b.ie_terms, 4u);
  EXPECT_EQ(b.nodes_estimated, 20u);
  EXPECT_EQ(b.cache_hits, 6u);
  EXPECT_EQ(b.cache_misses, 14u);
  EXPECT_EQ(b.cache_epoch_drops, 2u);
  EXPECT_EQ(b.exec_chunks, 8u);
  EXPECT_EQ(b.queries, 2u);
}

TEST(QueryProfileTest, ToJsonNamesEveryStage) {
  QueryProfile profile;
  profile.queries = 1;
  const std::string json = profile.ToJson();
  for (int s = 0; s < QueryProfile::kNumStages; ++s) {
    EXPECT_NE(json.find(QueryProfile::StageName(
                  static_cast<QueryProfile::Stage>(s))),
              std::string::npos)
        << json;
  }
  EXPECT_NE(json.find("\"queries\":1"), std::string::npos) << json;
}

// --- Engine integration ----------------------------------------------------

const Table& ProfTable() {
  static const Table* table = new Table(MakeIpums4D(2000, 12, /*seed=*/31));
  return *table;
}

TEST(EngineProfileTest, ExecuteSqlFillsTheProfile) {
  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params.epsilon = 2.0;
  options.seed = 7;
  const auto engine = AnalyticsEngine::Create(ProfTable(), options).ValueOrDie();

  QueryProfile profile;
  ASSERT_TRUE(engine
                  ->ExecuteSql(
                      "SELECT AVG(weekly_work_hour) FROM T "
                      "WHERE age BETWEEN 2 AND 9 AND sex = 1",
                      &profile)
                  .ok());
  EXPECT_EQ(profile.queries, 1u);
  EXPECT_GT(profile.total_nanos, 0u);
  EXPECT_EQ(profile.stages[QueryProfile::kParse].calls, 1u);
  EXPECT_GT(profile.stages[QueryProfile::kParse].wall_nanos, 0u);
  EXPECT_GT(profile.stages[QueryProfile::kRewrite].calls, 0u);
  // AVG = SUM / COUNT: two components, each with fan-out + estimate spans.
  EXPECT_GE(profile.stages[QueryProfile::kEstimate].calls, 2u);
  EXPECT_GT(profile.stages[QueryProfile::kEstimate].wall_nanos, 0u);
  EXPECT_EQ(profile.stages[QueryProfile::kAggregate].calls, 1u);
  EXPECT_GE(profile.ie_terms, 2u);
  EXPECT_GT(profile.nodes_estimated, 0u);
  // First run on a fresh engine: everything was a cache miss.
  EXPECT_EQ(profile.cache_hits, 0u);
  EXPECT_GT(profile.cache_misses, 0u);
  // Rewrite/fanout/estimate walls are nested inside the total (which covers
  // Execute; parse happens before Execute and is recorded separately).
  const uint64_t nested =
      profile.stages[QueryProfile::kRewrite].wall_nanos +
      profile.stages[QueryProfile::kFanout].wall_nanos +
      profile.stages[QueryProfile::kEstimate].wall_nanos;
  EXPECT_LE(nested, profile.total_nanos);

  // Re-running the identical query is served from the estimate cache.
  QueryProfile second;
  ASSERT_TRUE(engine
                  ->ExecuteSql(
                      "SELECT AVG(weekly_work_hour) FROM T "
                      "WHERE age BETWEEN 2 AND 9 AND sex = 1",
                      &second)
                  .ok());
  EXPECT_GT(second.cache_hits, 0u);
  EXPECT_EQ(second.cache_misses, 0u);
}

TEST(EngineProfileTest, ProfileAccumulatesAcrossQueries) {
  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params.epsilon = 2.0;
  options.seed = 7;
  const auto engine = AnalyticsEngine::Create(ProfTable(), options).ValueOrDie();
  QueryProfile profile;
  ASSERT_TRUE(engine
                  ->ExecuteSql("SELECT COUNT(*) FROM T WHERE age BETWEEN 1 AND 5",
                               &profile)
                  .ok());
  ASSERT_TRUE(engine
                  ->ExecuteSql("SELECT COUNT(*) FROM T WHERE age BETWEEN 6 AND 9",
                               &profile)
                  .ok());
  EXPECT_EQ(profile.queries, 2u);
  EXPECT_EQ(profile.stages[QueryProfile::kParse].calls, 2u);
}

// The determinism contract: metrics and profiling are observational only.
// Estimates must be bit-identical with metrics on or off, with or without a
// profile attached, across thread counts.
TEST(EngineProfileTest, MetricsAndProfilingNeverPerturbEstimates) {
  const char* sqls[] = {
      "SELECT COUNT(*) FROM T WHERE age BETWEEN 2 AND 9",
      "SELECT SUM(weekly_work_hour) FROM T WHERE income BETWEEN 0 AND 5",
      "SELECT AVG(weekly_work_hour) FROM T WHERE age BETWEEN 1 AND 10 "
      "AND sex = 1",
  };

  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params.epsilon = 2.0;
  options.seed = 1234;
  options.num_threads = 1;
  options.enable_metrics = true;
  const auto baseline_engine =
      AnalyticsEngine::Create(ProfTable(), options).ValueOrDie();
  std::vector<double> baseline;
  for (const char* sql : sqls) {
    baseline.push_back(baseline_engine->ExecuteSql(sql).ValueOrDie());
  }

  for (const bool metrics_on : {false, true}) {
    for (const int threads : {1, 2, 8}) {
      options.enable_metrics = metrics_on;
      options.num_threads = threads;
      const auto engine =
          AnalyticsEngine::Create(ProfTable(), options).ValueOrDie();
      QueryProfile profile;
      for (size_t i = 0; i < std::size(sqls); ++i) {
        EXPECT_EQ(engine->ExecuteSql(sqls[i], &profile).ValueOrDie(),
                  baseline[i])
            << "metrics=" << metrics_on << " threads=" << threads
            << " query " << i;
      }
      // The explicit profile is populated even with global metrics off.
      EXPECT_EQ(profile.queries, std::size(sqls));
      EXPECT_GT(profile.total_nanos, 0u);
    }
  }
  GlobalMetrics().set_enabled(true);  // restore for other tests in this binary
}

TEST(EngineProfileTest, GlobalRegistryObservesEngineWork) {
  GlobalMetrics().set_enabled(true);
  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params.epsilon = 2.0;
  options.seed = 7;
  options.num_threads = 2;  // a pool registers the exec.tasks_* metrics
  const auto engine = AnalyticsEngine::Create(ProfTable(), options).ValueOrDie();

  Counter* chunks = GlobalMetrics().counter("exec.chunks");
  Counter* nodes = GlobalMetrics().counter("estimate.nodes");
  Counter* misses = GlobalMetrics().counter("estimate_cache.misses");
  const uint64_t chunks_before = chunks->value();
  const uint64_t nodes_before = nodes->value();
  const uint64_t misses_before = misses->value();
  ASSERT_TRUE(
      engine->ExecuteSql("SELECT COUNT(*) FROM T WHERE age BETWEEN 2 AND 9")
          .ok());
  EXPECT_GT(chunks->value(), chunks_before);
  EXPECT_GT(nodes->value(), nodes_before);
  EXPECT_GT(misses->value(), misses_before);

  const MetricsRegistry::Snapshot snap = GlobalMetrics().TakeSnapshot();
  // Names from the README metrics reference that every engine run exports.
  EXPECT_TRUE(snap.counters.count("exec.chunks"));
  EXPECT_TRUE(snap.counters.count("exec.tasks_submitted"));
  EXPECT_TRUE(snap.counters.count("estimate_cache.hits"));
  EXPECT_TRUE(snap.counters.count("estimate_cache.epoch_drops"));
  EXPECT_TRUE(snap.counters.count("ingest.accepted"));
  EXPECT_TRUE(snap.histograms.count("exec.queue_wait"));
}

}  // namespace
}  // namespace ldp
