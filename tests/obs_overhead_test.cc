// Release-only overhead smoke test: the observability layer's budget is
// ~5% of end-to-end query wall time (DESIGN.md §10). Registered by CMake
// only for Release builds (the release-bench preset) — under RelWithDebInfo
// or sanitizers the instrumentation-to-work ratio is not representative.
//
// Methodology: the same query workload runs repeatedly with metrics enabled
// and disabled, interleaved; the min wall time of each arm is compared
// (min-of-N is the standard low-noise estimator for microbenchmarks). The
// assertion allows the 5% budget plus a small absolute slack to absorb timer
// jitter on loaded CI machines.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "engine/engine.h"
#include "obs/metrics.h"

namespace ldp {
namespace {

uint64_t RunWorkloadNanos(const AnalyticsEngine& engine) {
  static const char* sqls[] = {
      "SELECT COUNT(*) FROM T WHERE age BETWEEN 2 AND 9",
      "SELECT SUM(weekly_work_hour) FROM T WHERE income BETWEEN 0 AND 5",
      "SELECT AVG(weekly_work_hour) FROM T WHERE age BETWEEN 1 AND 10 "
      "AND sex = 1",
  };
  const auto start = std::chrono::steady_clock::now();
  for (const char* sql : sqls) {
    (void)engine.ExecuteSql(sql).ValueOrDie();
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

TEST(ObsOverheadTest, MetricsOnWithinBudgetOfMetricsOff) {
  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params.epsilon = 2.0;
  options.seed = 99;
  options.num_threads = 1;
  // No estimate cache: every repetition re-runs the estimation kernels, so
  // the measured work is the instrumented hot path, not a cache probe.
  options.enable_estimate_cache = false;
  static const Table* table = new Table(MakeIpums4D(20000, 12, /*seed=*/5));
  const auto engine = AnalyticsEngine::Create(*table, options).ValueOrDie();

  // Warm both arms (page-in, lazy FO caches stay off via the fresh weights
  // path being deterministic; first run is always slower).
  GlobalMetrics().set_enabled(true);
  (void)RunWorkloadNanos(*engine);
  GlobalMetrics().set_enabled(false);
  (void)RunWorkloadNanos(*engine);

  constexpr int kReps = 5;
  uint64_t min_on = UINT64_MAX;
  uint64_t min_off = UINT64_MAX;
  for (int rep = 0; rep < kReps; ++rep) {
    GlobalMetrics().set_enabled(true);
    min_on = std::min(min_on, RunWorkloadNanos(*engine));
    GlobalMetrics().set_enabled(false);
    min_off = std::min(min_off, RunWorkloadNanos(*engine));
  }
  GlobalMetrics().set_enabled(true);

  // 5% budget + 2 ms absolute slack for scheduler/timer noise.
  const double budget = 1.05 * static_cast<double>(min_off) + 2e6;
  EXPECT_LE(static_cast<double>(min_on), budget)
      << "metrics-on min " << min_on << " ns vs metrics-off min " << min_off
      << " ns (" << (100.0 * min_on / min_off - 100.0) << "% overhead)";
}

}  // namespace
}  // namespace ldp
