#include "fo/olh.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/privacy_math.h"

namespace ldp {
namespace {

TEST(OlhProtocolTest, ParametersMatchPaper) {
  const OlhProtocol proto(2.0, 1024, 0);
  EXPECT_EQ(proto.g(), OptimalOlhG(2.0));
  EXPECT_DOUBLE_EQ(proto.p(), OlhP(2.0, proto.g()));
  EXPECT_DOUBLE_EQ(proto.q(), 1.0 / proto.g());
  EXPECT_EQ(proto.ReportSizeWords(), 1u);
  EXPECT_EQ(proto.kind(), FoKind::kOlh);
  EXPECT_EQ(proto.domain_size(), 1024u);
}

TEST(OlhProtocolTest, EncodeOutputsInRange) {
  const OlhProtocol proto(1.0, 64, 16);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const FoReport r = proto.Encode(i % 64, rng);
    EXPECT_LT(r.value, proto.g());
    EXPECT_LT(r.seed, 16u);
    EXPECT_TRUE(r.bits.empty());
  }
}

TEST(OlhProtocolTest, StayProbabilityMatchesP) {
  const OlhProtocol proto(2.0, 64, 0);
  Rng rng(2);
  const uint64_t value = 17;
  int stays = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const FoReport r = proto.Encode(value, rng);
    stays += (SeededHashFamily::Eval(r.seed, value, proto.g()) == r.value);
  }
  EXPECT_NEAR(static_cast<double>(stays) / trials, proto.p(), 0.01);
}

// Manual reimplementation of eq. (37) from raw reports, used as the ground
// truth for both accumulator code paths.
double ManualEstimate(const OlhProtocol& proto,
                      const std::vector<FoReport>& reports,
                      const std::vector<double>& weights, uint64_t value) {
  double theta = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < reports.size(); ++i) {
    total += weights[i];
    if (proto.Supports(reports[i].seed, reports[i].value, value)) {
      theta += weights[i];
    }
  }
  return proto.scale() * (theta - total / proto.g());
}

TEST(OlhAccumulatorTest, DirectPathMatchesManualFormula) {
  const OlhProtocol proto(1.0, 32, 8);
  Rng rng(3);
  OlhAccumulator acc(proto);
  std::vector<FoReport> reports;
  std::vector<double> weights;
  for (uint64_t u = 0; u < 10; ++u) {  // 10 < 2 * pool: direct path
    const FoReport r = proto.Encode(u % 32, rng);
    acc.Add(r, u);
    reports.push_back(r);
    weights.push_back(1.0 + static_cast<double>(u));
  }
  EXPECT_FALSE(acc.UsesHistograms());
  const WeightVector w(weights);
  for (uint64_t v : {0ull, 5ull, 31ull}) {
    EXPECT_NEAR(acc.EstimateWeighted(v, w),
                ManualEstimate(proto, reports, weights, v), 1e-9);
  }
  EXPECT_NEAR(acc.GroupWeight(w), 55.0, 1e-12);
}

TEST(OlhAccumulatorTest, HistogramPathMatchesManualFormula) {
  const OlhProtocol proto(1.0, 32, 8);
  Rng rng(4);
  OlhAccumulator acc(proto);
  std::vector<FoReport> reports;
  std::vector<double> weights;
  for (uint64_t u = 0; u < 200; ++u) {  // 200 >= 2 * pool: histogram path
    const FoReport r = proto.Encode(u % 32, rng);
    acc.Add(r, u);
    reports.push_back(r);
    weights.push_back(0.5 * static_cast<double>(u % 7));
  }
  EXPECT_TRUE(acc.UsesHistograms());
  const WeightVector w(weights);
  for (uint64_t v = 0; v < 32; ++v) {
    EXPECT_NEAR(acc.EstimateWeighted(v, w),
                ManualEstimate(proto, reports, weights, v), 1e-9)
        << "value " << v;
  }
}

TEST(OlhAccumulatorTest, UnboundedPoolNeverUsesHistograms) {
  const OlhProtocol proto(1.0, 32, 0);
  Rng rng(5);
  OlhAccumulator acc(proto);
  for (uint64_t u = 0; u < 500; ++u) acc.Add(proto.Encode(0, rng), u);
  EXPECT_FALSE(acc.UsesHistograms());
}

TEST(OlhAccumulatorTest, EmptyGroupEstimatesZero) {
  const OlhProtocol proto(1.0, 32, 8);
  OlhAccumulator acc(proto);
  const WeightVector w(std::vector<double>{});
  EXPECT_DOUBLE_EQ(acc.EstimateWeighted(3, w), 0.0);
  EXPECT_DOUBLE_EQ(acc.GroupWeight(w), 0.0);
}

// Unbiasedness (Lemma 3): the mean estimate over many independent runs must
// approach the true frequency, and the empirical MSE must match the stated
// variance.
TEST(OlhAccuracyTest, UnbiasedAndVarianceNearLemma3) {
  const double eps = 1.0;
  const uint64_t domain = 64;
  const uint64_t n = 1500;
  const uint64_t true_count = 300;  // users holding the probed value
  const int runs = 150;
  const OlhProtocol proto(eps, domain, 0);
  Rng rng(6);

  double sum_est = 0.0;
  double sum_sq_err = 0.0;
  for (int run = 0; run < runs; ++run) {
    OlhAccumulator acc(proto);
    for (uint64_t u = 0; u < n; ++u) {
      const uint64_t v = u < true_count ? 7 : 1 + (u % 50) + 8;
      acc.Add(proto.Encode(v, rng), u);
    }
    const WeightVector w = WeightVector::Ones(n);
    const double est = acc.EstimateWeighted(7, w);
    sum_est += est;
    const double err = est - static_cast<double>(true_count);
    sum_sq_err += err * err;
  }
  const double mean_est = sum_est / runs;
  const double theory_var =
      Lemma3OlhVariance(eps, static_cast<double>(n),
                        static_cast<double>(true_count));
  // Unbiasedness: mean within ~4 standard errors.
  EXPECT_NEAR(mean_est, static_cast<double>(true_count),
              4.0 * std::sqrt(theory_var / runs));
  // Variance: within a factor of the theoretical value.
  const double emp_var = sum_sq_err / runs;
  EXPECT_GT(emp_var, theory_var * 0.5);
  EXPECT_LT(emp_var, theory_var * 2.0);
}

TEST(OlhAccuracyTest, PooledAndUnpooledAgreeStatistically) {
  const double eps = 2.0;
  const uint64_t n = 4000;
  const uint64_t true_count = 800;
  for (const uint32_t pool : {0u, 4096u}) {
    const OlhProtocol proto(eps, 32, pool);
    Rng rng(7 + pool);
    double sum_est = 0.0;
    const int runs = 60;
    for (int run = 0; run < runs; ++run) {
      OlhAccumulator acc(proto);
      for (uint64_t u = 0; u < n; ++u) {
        const uint64_t other = (u % 30 == 3) ? 31 : u % 30;
        acc.Add(proto.Encode(u < true_count ? 3 : other, rng), u);
      }
      sum_est += acc.EstimateWeighted(3, WeightVector::Ones(n));
    }
    const double theory_var = Lemma3OlhVariance(eps, n, true_count);
    EXPECT_NEAR(sum_est / runs, static_cast<double>(true_count),
                4.0 * std::sqrt(theory_var / runs))
        << "pool " << pool;
  }
}

}  // namespace
}  // namespace ldp
