// End-to-end determinism of the shard-parallel pipeline: for a fixed seed,
// the engine's estimates are bit-identical for every num_threads (encoding
// uses per-chunk RNG substreams, shards merge in order, and estimation
// reduces in fixed chunk order), and CollectionServer::IngestBatch is
// equivalent to a serial Ingest loop — same stats, same estimates — even
// with corrupt, duplicate, and misfit frames in the batch.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "engine/engine.h"
#include "engine/protocol.h"

namespace ldp {
namespace {

const Table& SmallTable() {
  static const Table* table = new Table(MakeIpums4D(3000, 12, /*seed=*/21));
  return *table;
}

std::vector<double> RunWorkload(const AnalyticsEngine& engine) {
  const char* sqls[] = {
      "SELECT COUNT(*) FROM T WHERE age BETWEEN 2 AND 9",
      "SELECT SUM(weekly_work_hour) FROM T WHERE income BETWEEN 0 AND 5",
      "SELECT COUNT(*) FROM T WHERE marital_status = 2 OR age = 3",
      "SELECT AVG(weekly_work_hour) FROM T WHERE age BETWEEN 1 AND 10 "
      "AND sex = 1",
  };
  std::vector<double> answers;
  for (const char* sql : sqls) {
    answers.push_back(engine.ExecuteSql(sql).ValueOrDie());
  }
  return answers;
}

class ParallelEngineTest : public ::testing::TestWithParam<MechanismKind> {};

TEST_P(ParallelEngineTest, EstimatesBitIdenticalAcrossThreadCounts) {
  EngineOptions options;
  options.mechanism = GetParam();
  options.params.epsilon = 2.0;
  options.seed = 1234;

  options.num_threads = 1;
  const auto serial =
      AnalyticsEngine::Create(SmallTable(), options).ValueOrDie();
  const std::vector<double> expected = RunWorkload(*serial);

  for (const int threads : {2, 8}) {
    options.num_threads = threads;
    const auto engine =
        AnalyticsEngine::Create(SmallTable(), options).ValueOrDie();
    const std::vector<double> answers = RunWorkload(*engine);
    ASSERT_EQ(answers.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(answers[i], expected[i])
          << MechanismKindName(GetParam()) << " query " << i << " with "
          << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, ParallelEngineTest,
                         ::testing::Values(MechanismKind::kHi,
                                           MechanismKind::kHio,
                                           MechanismKind::kSc,
                                           MechanismKind::kMg),
                         [](const ::testing::TestParamInfo<MechanismKind>&
                                info) { return MechanismKindName(info.param); });

TEST(ParallelEngineTest, AutoThreadCountMatchesSerial) {
  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params.epsilon = 2.0;
  options.seed = 77;
  options.num_threads = 1;
  const auto serial =
      AnalyticsEngine::Create(SmallTable(), options).ValueOrDie();
  options.num_threads = 0;  // one worker per hardware thread
  const auto parallel =
      AnalyticsEngine::Create(SmallTable(), options).ValueOrDie();
  EXPECT_EQ(RunWorkload(*parallel), RunWorkload(*serial));
}

// --- IngestBatch vs serial Ingest ----------------------------------------

struct Wire {
  CollectionSpec spec;
  std::vector<CollectionServer::ReportFrame> frames;   // views into storage
  std::vector<std::string> storage;  // includes corrupt/misfit payloads
};

Schema WireSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 54).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 6).ok());
  return schema;
}

/// A batch of 2000 valid frames salted with corrupt bytes, intra-batch
/// duplicates, and structurally-valid-but-misfit reports from an alien spec.
Wire MakeWire() {
  Wire wire;
  MechanismParams params;
  params.epsilon = 2.0;
  wire.spec =
      CollectionSpec::FromSchema(WireSchema(), MechanismKind::kHio, params);
  const LdpClient client = LdpClient::Create(wire.spec).ValueOrDie();

  // Same schema, different mechanism: an SC report carries one entry per
  // dimension where HIO expects a single sampled level, so it unframes and
  // deserializes fine but fails the mechanism's validation.
  const CollectionSpec alien_spec =
      CollectionSpec::FromSchema(WireSchema(), MechanismKind::kSc, params);
  const LdpClient alien_client = LdpClient::Create(alien_spec).ValueOrDie();

  Rng rng(11);
  Rng data_rng(12);
  const uint64_t n = 2000;
  wire.storage.reserve(n + 2);
  std::vector<std::pair<size_t, uint64_t>> plan;  // (storage index, user)
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(54)),
        static_cast<uint32_t>(data_rng.UniformInt(6))};
    wire.storage.push_back(client.EncodeUser(values, rng).ValueOrDie());
    plan.push_back({wire.storage.size() - 1, u});
    if (u % 401 == 7) {
      // Intra-batch duplicate: same user again (first occurrence wins).
      plan.push_back({wire.storage.size() - 1, u});
    }
    if (u % 503 == 11) {
      // Bit-flipped copy under a fresh user id: checksum must catch it.
      std::string bad = wire.storage.back();
      bad[bad.size() / 2] ^= 0x20;
      wire.storage.push_back(std::move(bad));
      plan.push_back({wire.storage.size() - 1, n + u});
    }
    if (u % 701 == 13) {
      // Well-formed frame whose report shape doesn't fit the mechanism:
      // decodes, fails validation, counted as rejected.
      wire.storage.push_back(
          alien_client.EncodeUser(values, rng).ValueOrDie());
      plan.push_back({wire.storage.size() - 1, 2 * n + u});
    }
  }
  wire.frames.reserve(plan.size());
  for (const auto& [index, user] : plan) {
    wire.frames.push_back(CollectionServer::ReportFrame{wire.storage[index], user});
  }
  return wire;
}

void ExpectSameOutcome(const CollectionServer& a, const CollectionServer& b) {
  EXPECT_EQ(a.ingest_stats().accepted, b.ingest_stats().accepted);
  EXPECT_EQ(a.ingest_stats().duplicate, b.ingest_stats().duplicate);
  EXPECT_EQ(a.ingest_stats().corrupt, b.ingest_stats().corrupt);
  EXPECT_EQ(a.ingest_stats().rejected, b.ingest_stats().rejected);
  EXPECT_EQ(a.num_reports(), b.num_reports());
  const WeightVector w = WeightVector::Ones(3 * 2000);
  const std::vector<Interval> ranges = {{10, 40}, {2, 2}};
  EXPECT_EQ(a.EstimateBox(ranges, w).ValueOrDie(),
            b.EstimateBox(ranges, w).ValueOrDie());
}

TEST(IngestBatchTest, MatchesSerialIngestWithFaultyFrames) {
  const Wire wire = MakeWire();

  CollectionServer serial = CollectionServer::Create(wire.spec).ValueOrDie();
  for (const CollectionServer::ReportFrame& f : wire.frames) {
    (void)serial.Ingest(f.bytes, f.user);  // faulty frames return an error
  }
  EXPECT_GT(serial.ingest_stats().duplicate, 0u);
  EXPECT_GT(serial.ingest_stats().corrupt, 0u);
  EXPECT_GT(serial.ingest_stats().rejected, 0u);

  for (const int threads : {1, 4}) {
    CollectionServer batched =
        CollectionServer::Create(wire.spec, threads).ValueOrDie();
    ASSERT_TRUE(batched.IngestBatch(wire.frames).ok());
    ExpectSameOutcome(batched, serial);
  }
}

TEST(IngestBatchTest, SplitBatchesMatchOneBatch) {
  const Wire wire = MakeWire();
  CollectionServer one = CollectionServer::Create(wire.spec, 4).ValueOrDie();
  ASSERT_TRUE(one.IngestBatch(wire.frames).ok());

  CollectionServer split = CollectionServer::Create(wire.spec, 4).ValueOrDie();
  const size_t cut = wire.frames.size() / 3;
  const std::span<const CollectionServer::ReportFrame> frames(wire.frames);
  ASSERT_TRUE(split.IngestBatch(frames.subspan(0, cut)).ok());
  ASSERT_TRUE(split.IngestBatch(frames.subspan(cut)).ok());
  ExpectSameOutcome(split, one);
}

TEST(IngestBatchTest, EmptyBatchIsANoOp) {
  const CollectionSpec spec = MakeWire().spec;
  CollectionServer server = CollectionServer::Create(spec, 2).ValueOrDie();
  EXPECT_TRUE(server.IngestBatch({}).ok());
  EXPECT_EQ(server.num_reports(), 0u);
}

}  // namespace
}  // namespace ldp
