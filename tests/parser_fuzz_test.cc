// Robustness: the SQL parser must return a Status (never crash, hang, or
// abort) on arbitrary token soup, and must accept every string the library
// itself prints for a valid query (print/parse closure).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/parser.h"

namespace ldp {
namespace {

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 100).ok());
  EXPECT_TRUE(schema.AddOrdinal("salary", 200).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 50).ok());
  EXPECT_TRUE(schema.AddMeasure("purchase").ok());
  return schema;
}

const char* const kTokens[] = {
    "SELECT", "FROM",  "WHERE",   "AND",  "OR",       "NOT",   "BETWEEN",
    "IN",     "COUNT", "SUM",     "AVG",  "STDEV",    "T",     "age",
    "salary", "state", "purchase", "bogus", "(",       ")",     "[",
    "]",      ",",     "*",       "+",    "-",        "=",     "<",
    "<=",     ">",     ">=",      "0",    "1",        "42",    "3.5",
    "-7",     "1e3",   "999999999999",
};

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const Schema schema = TestSchema();
  Rng rng(20260705);
  int parsed_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.UniformInt(24));
    for (int i = 0; i < len; ++i) {
      sql += kTokens[rng.UniformInt(std::size(kTokens))];
      sql += ' ';
    }
    const auto result = ParseQuery(schema, sql);
    parsed_ok += result.ok();
    if (!result.ok()) {
      // Errors must be structured, not internal faults.
      EXPECT_NE(result.status().code(), StatusCode::kInternal) << sql;
    }
  }
  // Sanity: pure noise occasionally forms a valid query, but mostly not.
  EXPECT_LT(parsed_ok, 500);
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  const Schema schema = TestSchema();
  Rng rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = static_cast<int>(rng.UniformInt(60));
    for (int i = 0; i < len; ++i) {
      sql += static_cast<char>(32 + rng.UniformInt(95));  // printable ASCII
    }
    (void)ParseQuery(schema, sql);  // must simply return
  }
}

TEST(ParserFuzzTest, PrintParseClosureOnRandomQueries) {
  const Schema schema = TestSchema();
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    // Build a random valid query.
    std::vector<PredicatePtr> clauses;
    const int n_clauses = 1 + static_cast<int>(rng.UniformInt(3));
    for (int i = 0; i < n_clauses; ++i) {
      const int attr = static_cast<int>(rng.UniformInt(3));
      const uint64_t m = schema.attribute(attr).domain_size;
      const uint64_t lo = rng.UniformInt(m);
      const uint64_t hi = rng.UniformRange(lo, m - 1);
      PredicatePtr c = Predicate::MakeConstraint(attr, {lo, hi});
      if (rng.Bernoulli(0.2)) c = Predicate::MakeNot(c);
      clauses.push_back(std::move(c));
    }
    Query query;
    query.aggregate = rng.Bernoulli(0.5) ? Aggregate::Count()
                                         : Aggregate::Sum(3);
    query.where = rng.Bernoulli(0.5) ? Predicate::MakeAnd(clauses)
                                     : Predicate::MakeOr(clauses);
    const std::string printed = query.ToString(schema);
    const auto reparsed = ParseQuery(schema, printed);
    ASSERT_TRUE(reparsed.ok()) << printed << " -> "
                               << reparsed.status().ToString();
    EXPECT_EQ(reparsed.value().ToString(schema), printed);
  }
}

}  // namespace
}  // namespace ldp
