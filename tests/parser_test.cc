#include "query/parser.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 100).ok());
  EXPECT_TRUE(schema.AddOrdinal("salary", 200).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 50).ok());
  EXPECT_TRUE(schema.AddPublicDimension("os", 3).ok());
  EXPECT_TRUE(schema.AddMeasure("purchase").ok());
  EXPECT_TRUE(schema.AddMeasure("active_time").ok());
  return schema;
}

const Constraint& SoleConstraint(const Query& q) {
  EXPECT_EQ(q.where->kind(), Predicate::Kind::kConstraint);
  return q.where->constraint();
}

TEST(ParserTest, PaperExampleQuery) {
  // Example 1.1 of the paper (with BETWEEN spelling).
  const Schema schema = TestSchema();
  const Query q = ParseQuery(schema,
                             "SELECT SUM(purchase) FROM T WHERE age BETWEEN "
                             "30 AND 40 AND salary BETWEEN 50 AND 150")
                      .ValueOrDie();
  EXPECT_EQ(q.aggregate.kind, AggregateKind::kSum);
  ASSERT_EQ(q.aggregate.expr.terms.size(), 1u);
  EXPECT_EQ(q.aggregate.expr.terms[0].attr, 4);
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind(), Predicate::Kind::kAnd);
  ASSERT_EQ(q.where->children().size(), 2u);
  const Constraint& c0 = q.where->children()[0]->constraint();
  EXPECT_EQ(c0.attr, 0);
  EXPECT_EQ(c0.range, (Interval{30, 40}));
  const Constraint& c1 = q.where->children()[1]->constraint();
  EXPECT_EQ(c1.attr, 1);
  EXPECT_EQ(c1.range, (Interval{50, 150}));
}

TEST(ParserTest, CountStar) {
  const Query q =
      ParseQuery(TestSchema(), "SELECT COUNT(*) FROM T").ValueOrDie();
  EXPECT_EQ(q.aggregate.kind, AggregateKind::kCount);
  EXPECT_EQ(q.where, nullptr);
}

TEST(ParserTest, AvgAndStdev) {
  EXPECT_EQ(ParseQuery(TestSchema(), "SELECT AVG(active_time) FROM T")
                .ValueOrDie()
                .aggregate.kind,
            AggregateKind::kAvg);
  EXPECT_EQ(ParseQuery(TestSchema(), "SELECT STDEV(purchase) FROM T")
                .ValueOrDie()
                .aggregate.kind,
            AggregateKind::kStdev);
}

TEST(ParserTest, LinearMeasureExpression) {
  // Section 7: SUM(a*M1 + b*M2).
  const Query q = ParseQuery(TestSchema(),
                             "SELECT SUM(2*purchase + 0.5*active_time - 3) "
                             "FROM T")
                      .ValueOrDie();
  ASSERT_EQ(q.aggregate.expr.terms.size(), 2u);
  EXPECT_DOUBLE_EQ(q.aggregate.expr.terms[0].coef, 2.0);
  EXPECT_DOUBLE_EQ(q.aggregate.expr.terms[1].coef, 0.5);
  EXPECT_DOUBLE_EQ(q.aggregate.expr.constant, -3.0);
}

TEST(ParserTest, ComparisonOperatorsBecomeRanges) {
  const Schema schema = TestSchema();
  EXPECT_EQ(SoleConstraint(ParseQuery(schema,
                                      "SELECT COUNT(*) FROM T WHERE age <= 30")
                               .ValueOrDie())
                .range,
            (Interval{0, 30}));
  EXPECT_EQ(SoleConstraint(ParseQuery(schema,
                                      "SELECT COUNT(*) FROM T WHERE age < 30")
                               .ValueOrDie())
                .range,
            (Interval{0, 29}));
  EXPECT_EQ(SoleConstraint(ParseQuery(schema,
                                      "SELECT COUNT(*) FROM T WHERE age >= 30")
                               .ValueOrDie())
                .range,
            (Interval{30, 99}));
  EXPECT_EQ(SoleConstraint(ParseQuery(schema,
                                      "SELECT COUNT(*) FROM T WHERE age > 30")
                               .ValueOrDie())
                .range,
            (Interval{31, 99}));
  EXPECT_EQ(SoleConstraint(ParseQuery(schema,
                                      "SELECT COUNT(*) FROM T WHERE state = 7")
                               .ValueOrDie())
                .range,
            (Interval{7, 7}));
}

TEST(ParserTest, InBracketSyntax) {
  // The paper writes ranges as "D IN [l, r]".
  const Query q = ParseQuery(TestSchema(),
                             "SELECT COUNT(*) FROM T WHERE age IN [20, 35]")
                      .ValueOrDie();
  EXPECT_EQ(SoleConstraint(q).range, (Interval{20, 35}));
}

TEST(ParserTest, RangesClampToDomain) {
  const Schema schema = TestSchema();
  // age domain is [0, 99]; salary cap mirrors Example 1.1's 150K on a 200
  // domain.
  EXPECT_EQ(SoleConstraint(
                ParseQuery(schema,
                           "SELECT COUNT(*) FROM T WHERE age BETWEEN 90 AND 500")
                    .ValueOrDie())
                .range,
            (Interval{90, 99}));
  EXPECT_EQ(SoleConstraint(
                ParseQuery(schema,
                           "SELECT COUNT(*) FROM T WHERE age BETWEEN -5 AND 10")
                    .ValueOrDie())
                .range,
            (Interval{0, 10}));
}

TEST(ParserTest, EmptyRangesBecomeAlwaysFalse) {
  const Schema schema = TestSchema();
  for (const char* sql : {
           "SELECT COUNT(*) FROM T WHERE age BETWEEN 50 AND 40",
           "SELECT COUNT(*) FROM T WHERE age = 1000",
           "SELECT COUNT(*) FROM T WHERE age < 0",
           "SELECT COUNT(*) FROM T WHERE age = 30.5",  // non-integer equality
           "SELECT COUNT(*) FROM T WHERE age > 99",
       }) {
    const Query q = ParseQuery(schema, sql).ValueOrDie();
    const Constraint& c = SoleConstraint(q);
    EXPECT_GT(c.range.lo, c.range.hi) << sql;
  }
}

TEST(ParserTest, FractionalBoundsRound) {
  const Schema schema = TestSchema();
  // <= 30.7 keeps 30; >= 30.7 starts at 31.
  EXPECT_EQ(SoleConstraint(ParseQuery(schema,
                                      "SELECT COUNT(*) FROM T WHERE age <= 30.7")
                               .ValueOrDie())
                .range,
            (Interval{0, 30}));
  EXPECT_EQ(SoleConstraint(ParseQuery(schema,
                                      "SELECT COUNT(*) FROM T WHERE age >= 30.7")
                               .ValueOrDie())
                .range,
            (Interval{31, 99}));
}

TEST(ParserTest, AndOrPrecedenceAndParens) {
  const Schema schema = TestSchema();
  const Query q =
      ParseQuery(schema,
                 "SELECT COUNT(*) FROM T WHERE age <= 10 OR age >= 90 AND "
                 "state = 1")
          .ValueOrDie();
  // AND binds tighter: OR(age<=10, AND(age>=90, state=1)).
  ASSERT_EQ(q.where->kind(), Predicate::Kind::kOr);
  ASSERT_EQ(q.where->children().size(), 2u);
  EXPECT_EQ(q.where->children()[1]->kind(), Predicate::Kind::kAnd);

  const Query q2 =
      ParseQuery(schema,
                 "SELECT COUNT(*) FROM T WHERE (age <= 10 OR age >= 90) AND "
                 "state = 1")
          .ValueOrDie();
  ASSERT_EQ(q2.where->kind(), Predicate::Kind::kAnd);
  EXPECT_EQ(q2.where->children()[0]->kind(), Predicate::Kind::kOr);
}

TEST(ParserTest, NotPredicate) {
  const Schema schema = TestSchema();
  const Query q =
      ParseQuery(schema,
                 "SELECT COUNT(*) FROM T WHERE NOT age BETWEEN 30 AND 40")
          .ValueOrDie();
  ASSERT_EQ(q.where->kind(), Predicate::Kind::kNot);
  const Query q2 =
      ParseQuery(schema,
                 "SELECT COUNT(*) FROM T WHERE NOT (age <= 10 OR state = 1) "
                 "AND salary >= 5")
          .ValueOrDie();
  ASSERT_EQ(q2.where->kind(), Predicate::Kind::kAnd);
  EXPECT_EQ(q2.where->children()[0]->kind(), Predicate::Kind::kNot);
  // NOT NOT collapses.
  const Query q3 =
      ParseQuery(schema, "SELECT COUNT(*) FROM T WHERE NOT NOT age = 5")
          .ValueOrDie();
  EXPECT_EQ(q3.where->kind(), Predicate::Kind::kConstraint);
}

TEST(ParserTest, PublicDimensionAllowedInWhere) {
  const Query q = ParseQuery(TestSchema(),
                             "SELECT COUNT(*) FROM T WHERE os = 1 AND age < 50")
                      .ValueOrDie();
  EXPECT_EQ(q.where->kind(), Predicate::Kind::kAnd);
}

TEST(ParserTest, Errors) {
  const Schema schema = TestSchema();
  EXPECT_FALSE(ParseQuery(schema, "").ok());
  EXPECT_FALSE(ParseQuery(schema, "SELECT").ok());
  EXPECT_FALSE(ParseQuery(schema, "SELECT MAX(purchase) FROM T").ok());
  EXPECT_FALSE(ParseQuery(schema, "SELECT SUM(purchase) WHERE age = 1").ok());
  EXPECT_FALSE(ParseQuery(schema, "SELECT SUM(nope) FROM T").ok());
  EXPECT_FALSE(ParseQuery(schema, "SELECT SUM(age) FROM T").ok());  // dim
  EXPECT_FALSE(
      ParseQuery(schema, "SELECT COUNT(*) FROM T WHERE purchase = 3").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "SELECT COUNT(*) FROM T WHERE age").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "SELECT COUNT(*) FROM T WHERE age BETWEEN 3").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "SELECT COUNT(*) FROM T WHERE age IN [3; 5]").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "SELECT COUNT(*) FROM T trailing junk").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "SELECT COUNT(*) FROM T WHERE (age = 3").ok());
}

TEST(ParserTest, QueryToStringRoundTripsThroughParser) {
  const Schema schema = TestSchema();
  const Query q =
      ParseQuery(schema,
                 "SELECT SUM(purchase) FROM T WHERE age IN [30, 40] AND "
                 "state = 2")
          .ValueOrDie();
  const Query q2 = ParseQuery(schema, q.ToString(schema)).ValueOrDie();
  EXPECT_EQ(q2.ToString(schema), q.ToString(schema));
}

}  // namespace
}  // namespace ldp
