// PlanCache unit behavior (LRU, epoch hard-drop, SQL side index) and the
// engine-level caching contract: repeated queries are pure plan-cache hits,
// and Execute + ExecuteWithBound on the same query rewrite it exactly once
// (the duplicate-rewrite regression).

#include <memory>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "plan/plan_cache.h"

namespace ldp {
namespace {

std::shared_ptr<const PhysicalPlan> MakePlan(uint64_t epoch,
                                             uint64_t config_fingerprint = 0) {
  auto plan = std::make_shared<PhysicalPlan>();
  plan->epoch = epoch;
  plan->config_fingerprint = config_fingerprint;
  return plan;
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Get("q1", 10), nullptr);
  cache.Put("q1", MakePlan(10));
  const auto plan = cache.Get("q1", 10);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->epoch, 10u);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.epoch_drops, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, NewerEpochHardDropsEntry) {
  PlanCache cache(4);
  cache.Put("q1", MakePlan(10));
  // Reports arrived since planning: the entry must be dropped, not served.
  EXPECT_EQ(cache.Get("q1", 11), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.epoch_drops, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // The drop is permanent: a probe back at the original epoch misses too.
  EXPECT_EQ(cache.Get("q1", 10), nullptr);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.epoch_drops, 1u);
}

TEST(PlanCacheTest, OlderEpochHardDropsToo) {
  // Epoch going backwards means the report store was reset; only exact
  // equality proves the plan still describes reality.
  PlanCache cache(4);
  cache.Put("q1", MakePlan(10));
  EXPECT_EQ(cache.Get("q1", 9), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.epoch_drops, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, LruEvictionPrefersStaleEntries) {
  PlanCache cache(2);
  cache.Put("q1", MakePlan(1));
  cache.Put("q2", MakePlan(1));
  ASSERT_NE(cache.Get("q1", 1), nullptr);  // refresh q1: q2 is now LRU
  cache.Put("q3", MakePlan(1));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get("q1", 1), nullptr);
  EXPECT_EQ(cache.Get("q2", 1), nullptr);
  EXPECT_NE(cache.Get("q3", 1), nullptr);
}

TEST(PlanCacheTest, SqlIndexSkipsNothingWhenUnlinked) {
  PlanCache cache(4);
  cache.Put("q1", MakePlan(1));
  // An unknown SQL string is not a keyed miss — the caller falls back to the
  // parse path and the keyed cache may still hit afterwards.
  const auto before = cache.stats();
  EXPECT_EQ(cache.GetSql("SELECT 1", 1), nullptr);
  EXPECT_EQ(cache.stats().misses, before.misses);

  cache.LinkSql("SELECT 1", "q1");
  const auto plan = cache.GetSql("SELECT 1", 1);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(cache.GetSql("SELECT 1", 2), nullptr);  // epoch drop via GetSql
  EXPECT_EQ(cache.stats().epoch_drops, 1u);
}

TEST(PlanCacheTest, ConfigFingerprintMismatchHardDropsEntry) {
  // The candidate set (or any planner-visible option) changed: a plan built
  // under the old configuration must never be served, even at the same epoch.
  PlanCache cache(4);
  cache.Put("q1", MakePlan(10, /*config_fingerprint=*/111));
  EXPECT_EQ(cache.Get("q1", 10, /*config_fingerprint=*/222), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.config_drops, 1u);
  EXPECT_EQ(stats.epoch_drops, 0u);
  EXPECT_EQ(cache.size(), 0u);
  // The drop is permanent, like an epoch drop.
  EXPECT_EQ(cache.Get("q1", 10, 111), nullptr);

  // Matching fingerprints serve normally, including through the SQL index.
  cache.Put("q2", MakePlan(10, 111));
  ASSERT_NE(cache.Get("q2", 10, 111), nullptr);
  cache.LinkSql("SELECT 2", "q2");
  ASSERT_NE(cache.GetSql("SELECT 2", 10, 111), nullptr);
  EXPECT_EQ(cache.GetSql("SELECT 2", 10, 333), nullptr);
  EXPECT_EQ(cache.stats().config_drops, 2u);
}

TEST(PlanCacheTest, EvictionPrunesTheSqlIndex) {
  // The sql_index_ leak/staleness regression: evicting an entry used to
  // leave its SQL mappings behind (or, worse, wipe the whole index). Each
  // mapping must die with exactly its own entry.
  PlanCache cache(2);
  cache.Put("qA", MakePlan(1));
  cache.LinkSql("SELECT A", "qA");
  cache.Put("qB", MakePlan(1));
  cache.LinkSql("SELECT B", "qB");
  EXPECT_EQ(cache.sql_index_size(), 2u);

  // Capacity eviction takes qA (LRU) and only qA's mapping.
  cache.Put("qC", MakePlan(1));
  cache.LinkSql("SELECT C", "qC");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.sql_index_size(), 2u);
  EXPECT_EQ(cache.GetSql("SELECT A", 1), nullptr);
  ASSERT_NE(cache.GetSql("SELECT B", 1), nullptr);  // survivor still linked
  ASSERT_NE(cache.GetSql("SELECT C", 1), nullptr);

  // Epoch hard-drop through the keyed path prunes the mapping too.
  EXPECT_EQ(cache.Get("qB", 2), nullptr);
  EXPECT_EQ(cache.sql_index_size(), 1u);
  EXPECT_EQ(cache.GetSql("SELECT B", 1), nullptr);
}

TEST(PlanCacheTest, LinkSqlAnchorsToLiveEntriesOnly) {
  PlanCache cache(4);
  // Linking to an uncached key is a no-op, not a dangling mapping.
  cache.LinkSql("SELECT X", "missing");
  EXPECT_EQ(cache.sql_index_size(), 0u);

  // Re-linking a spelling moves it between entries cleanly: evicting the
  // old entry afterwards must not take the moved mapping with it.
  cache.Put("q1", MakePlan(1));
  cache.Put("q2", MakePlan(1));
  cache.LinkSql("SELECT X", "q1");
  cache.LinkSql("SELECT X", "q2");
  EXPECT_EQ(cache.sql_index_size(), 1u);
  cache.Put("q1", MakePlan(2));  // refresh drops the old q1 entry
  ASSERT_NE(cache.Get("q2", 1), nullptr);
  ASSERT_NE(cache.GetSql("SELECT X", 1), nullptr);

  // The per-entry alias cap bounds the side index: oldest spelling first.
  for (size_t i = 0; i < PlanCache::kMaxSqlAliases + 2; ++i) {
    cache.LinkSql("SELECT X /* " + std::to_string(i) + " */", "q2");
  }
  EXPECT_EQ(cache.sql_index_size(), PlanCache::kMaxSqlAliases);
  EXPECT_EQ(cache.GetSql("SELECT X /* 0 */", 1), nullptr);
  ASSERT_NE(cache.GetSql("SELECT X /* 3 */", 1), nullptr);
}

// --- Engine-level contract -------------------------------------------------

std::unique_ptr<AnalyticsEngine> MakeEngine(const Table& table,
                                            bool plan_cache = true) {
  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params.epsilon = 2.0;
  options.seed = 11;
  options.enable_plan_cache = plan_cache;
  return AnalyticsEngine::Create(table, options).ValueOrDie();
}

TEST(EnginePlanCacheTest, RepeatedQueryIsAPureHit) {
  const Table table = MakeIpums4D(4000, 54, 7);
  const auto engine = MakeEngine(table);
  const Query query =
      ParseQuery(table.schema(),
                 "SELECT COUNT(*) FROM T WHERE age BETWEEN 10 AND 30")
          .ValueOrDie();

  Counter* hits = GlobalMetrics().counter("plan_cache.hits");
  Counter* misses = GlobalMetrics().counter("plan_cache.misses");

  const double first = engine->Execute(query).ValueOrDie();
  auto stats = engine->plan_cache()->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.hits, 0u);

  const uint64_t hits_before = hits->value();
  const uint64_t misses_before = misses->value();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(engine->Execute(query).ValueOrDie(), first);
  }
  stats = engine->plan_cache()->stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);  // pure hits: no further misses
  // The GlobalMetrics mirror moves in lockstep.
  EXPECT_EQ(hits->value() - hits_before, 3u);
  EXPECT_EQ(misses->value() - misses_before, 0u);
}

TEST(EnginePlanCacheTest, RepeatedSqlSkipsTheParse) {
  const Table table = MakeIpums4D(4000, 54, 7);
  const auto engine = MakeEngine(table);
  const char* sql = "SELECT COUNT(*) FROM T WHERE age BETWEEN 10 AND 30";

  const double first = engine->ExecuteSql(sql).ValueOrDie();
  QueryProfile profile;
  EXPECT_EQ(engine->ExecuteSql(sql, &profile).ValueOrDie(), first);
  // The SQL side index answered: no parse stage ran for the repeat.
  EXPECT_EQ(profile.stages[QueryProfile::kParse].calls, 0u);
  EXPECT_GE(engine->plan_cache()->stats().hits, 1u);
}

TEST(EnginePlanCacheTest, ExecuteThenBoundRewritesExactlyOnce) {
  // The duplicate-rewrite regression: ExecuteWithBound used to re-validate
  // and re-rewrite the query after Execute had already done so. Both entry
  // points must share one cached plan — exactly one rewrite between them.
  const Table table = MakeIpums4D(4000, 54, 7);
  const auto engine = MakeEngine(table);
  const Query query =
      ParseQuery(table.schema(),
                 "SELECT COUNT(*) FROM T WHERE age BETWEEN 10 AND 30 OR "
                 "age BETWEEN 40 AND 50")
          .ValueOrDie();

  Counter* rewrites = GlobalMetrics().counter("plan.rewrites");
  const uint64_t before = rewrites->value();
  const double estimate = engine->Execute(query).ValueOrDie();
  const auto bounded = engine->ExecuteWithBound(query).ValueOrDie();
  EXPECT_EQ(bounded.estimate, estimate);
  EXPECT_EQ(rewrites->value() - before, 1u);
}

TEST(EnginePlanCacheTest, PlansCarryTheEngineConfigFingerprint) {
  // Every plan the engine builds is stamped with the engine's configuration
  // fingerprint, so a cache probe under any other configuration hard-drops.
  const Table table = MakeIpums4D(4000, 54, 7);
  const auto engine = MakeEngine(table);
  const Query query =
      ParseQuery(table.schema(),
                 "SELECT COUNT(*) FROM T WHERE age BETWEEN 10 AND 30")
          .ValueOrDie();
  const auto plan = engine->PlanFor(query).ValueOrDie();
  EXPECT_NE(engine->config_fingerprint(), 0u);
  EXPECT_EQ(plan->config_fingerprint, engine->config_fingerprint());
  // Simulate a configuration change probing the same cache entry.
  const std::string key = QueryCacheKey(table.schema(), query);
  EXPECT_EQ(engine->plan_cache()->Get(key, plan->epoch,
                                      engine->config_fingerprint() + 1),
            nullptr);
  EXPECT_EQ(engine->plan_cache()->stats().config_drops, 1u);
  // The probe dropped the entry; the engine transparently replans.
  EXPECT_TRUE(engine->Execute(query).ok());
}

TEST(EnginePlanCacheTest, DisabledCacheStillAnswersIdentically) {
  const Table table = MakeIpums4D(4000, 54, 7);
  const auto cached = MakeEngine(table, /*plan_cache=*/true);
  const auto uncached = MakeEngine(table, /*plan_cache=*/false);
  EXPECT_EQ(uncached->plan_cache(), nullptr);
  const Query query =
      ParseQuery(table.schema(),
                 "SELECT AVG(weekly_work_hour) FROM T WHERE age <= 25")
          .ValueOrDie();
  const double a = cached->Execute(query).ValueOrDie();
  const double b = uncached->Execute(query).ValueOrDie();
  EXPECT_EQ(a, b);
  // Without a cache every execution replans; with one it must not.
  EXPECT_EQ(uncached->Execute(query).ValueOrDie(), b);
}

}  // namespace
}  // namespace ldp
