// Bit-identity of the planned execution path with the legacy (pre-planner)
// engine loop, across every mechanism x thread count x cache setting, plus
// ExecuteBatch vs. sequential Execute. The legacy path is reimplemented here
// from public APIs exactly as engine.cc used to inline it: rewrite ->
// per-component, per-term weight construction + EstimateBox ->
// coefficient-weighted accumulation -> aggregate composition. Floating-point
// accumulation order is load-bearing, so the reference replays it verbatim.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "query/rewriter.h"

namespace ldp {
namespace {

enum class LegacyComponent { kCount, kSum, kSumSq };

Table MultiDimTable(uint64_t n = 1500) {
  TableSpec spec;
  spec.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kUniform, 1.0});
  spec.dims.push_back(
      {"b", AttributeKind::kSensitiveOrdinal, 12, ColumnDist::kZipf, 1.1});
  spec.dims.push_back({"c", AttributeKind::kSensitiveCategorical, 4,
                       ColumnDist::kUniform, 1.0});
  spec.dims.push_back(
      {"p", AttributeKind::kPublicDimension, 3, ColumnDist::kUniform, 1.0});
  spec.measures.push_back({"m", 0.0, 5.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, 177).ValueOrDie();
}

Table TwoDimTable(uint64_t n = 1500) {
  TableSpec spec;
  spec.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kUniform, 1.0});
  spec.dims.push_back(
      {"b", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kZipf, 1.1});
  spec.dims.push_back(
      {"p", AttributeKind::kPublicDimension, 3, ColumnDist::kUniform, 1.0});
  spec.measures.push_back({"m", 0.0, 5.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, 178).ValueOrDie();
}

Table OneDimTable(uint64_t n = 1500) {
  TableSpec spec;
  spec.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 32, ColumnDist::kGaussianBell,
       1.0});
  spec.dims.push_back(
      {"p", AttributeKind::kPublicDimension, 3, ColumnDist::kUniform, 1.0});
  spec.measures.push_back({"m", 0.0, 5.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, 179).ValueOrDie();
}

const Table& TableFor(MechanismKind kind) {
  static const Table* multi = new Table(MultiDimTable());
  static const Table* two = new Table(TwoDimTable());
  static const Table* one = new Table(OneDimTable());
  switch (kind) {
    case MechanismKind::kQuadTree:
      return *two;
    case MechanismKind::kHaar:
      return *one;
    default:
      return *multi;
  }
}

/// Workload per mechanism: QuadTree/Haar constrain fewer dimensions, but all
/// queries exercise OR (multi-term inclusion-exclusion), NOT, public-dim
/// constraints, and all four aggregates.
std::vector<const char*> SqlsFor(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kQuadTree:
      return {
          "SELECT COUNT(*) FROM T WHERE a BETWEEN 2 AND 9",
          "SELECT SUM(m) FROM T WHERE a BETWEEN 1 AND 8 OR b BETWEEN 3 AND 11",
          "SELECT AVG(m) FROM T WHERE a <= 9 AND p = 1",
          "SELECT STDEV(m) FROM T WHERE NOT (a BETWEEN 4 AND 12)",
      };
    case MechanismKind::kHaar:
      return {
          "SELECT COUNT(*) FROM T WHERE a BETWEEN 4 AND 19",
          "SELECT SUM(m) FROM T WHERE a <= 7 OR a >= 25",
          "SELECT AVG(m) FROM T WHERE a <= 15 AND p = 1",
          "SELECT STDEV(m) FROM T WHERE NOT (a BETWEEN 8 AND 23)",
      };
    default:
      return {
          "SELECT COUNT(*) FROM T WHERE a BETWEEN 2 AND 9",
          "SELECT SUM(m) FROM T WHERE a BETWEEN 1 AND 8 OR b BETWEEN 3 AND 11",
          "SELECT AVG(m) FROM T WHERE a <= 9 AND c = 2 AND p = 1",
          "SELECT STDEV(m) FROM T WHERE NOT (a BETWEEN 4 AND 12)",
      };
  }
}

// --- The legacy execution loop, replayed from public APIs -----------------

WeightVector LegacyWeights(const Table& table, LegacyComponent component,
                           const Query& query, const ConjunctiveBox& box) {
  const Schema& schema = table.schema();
  const uint64_t n = table.num_rows();
  std::vector<double> weights;
  switch (component) {
    case LegacyComponent::kCount:
      weights.assign(n, 1.0);
      break;
    case LegacyComponent::kSum:
      weights = query.aggregate.expr.EvalColumn(table);
      break;
    case LegacyComponent::kSumSq: {
      weights = query.aggregate.expr.EvalColumn(table);
      for (auto& w : weights) w *= w;
      break;
    }
  }
  for (const auto& c : box.constraints) {
    if (schema.attribute(c.attr).kind != AttributeKind::kPublicDimension) {
      continue;
    }
    const auto& col = table.DimColumn(c.attr);
    for (uint64_t row = 0; row < n; ++row) {
      if (!c.range.Contains(col[row])) weights[row] = 0.0;
    }
  }
  return WeightVector(std::move(weights));
}

double LegacyEstimateComponent(const AnalyticsEngine& engine,
                               LegacyComponent component, const Query& query,
                               const std::vector<IeTerm>& terms) {
  const Schema& schema = engine.schema();
  double total = 0.0;
  std::vector<Interval> sensitive;
  for (const IeTerm& term : terms) {
    sensitive.clear();
    for (const int attr : schema.sensitive_dims()) {
      sensitive.push_back(
          term.box.RangeOf(attr, schema.attribute(attr).domain_size));
    }
    const WeightVector weights =
        LegacyWeights(engine.table(), component, query, term.box);
    const double estimate =
        engine.mechanism().EstimateBox(sensitive, weights).ValueOrDie();
    total += term.coefficient * estimate;
  }
  return total;
}

double LegacyExecute(const AnalyticsEngine& engine, const Query& query) {
  const auto terms =
      RewritePredicate(engine.schema(), query.where.get()).ValueOrDie();
  if (terms.empty()) return 0.0;
  switch (query.aggregate.kind) {
    case AggregateKind::kCount:
      return LegacyEstimateComponent(engine, LegacyComponent::kCount, query,
                                     terms);
    case AggregateKind::kSum:
      return LegacyEstimateComponent(engine, LegacyComponent::kSum, query,
                                     terms);
    case AggregateKind::kAvg: {
      const double sum = LegacyEstimateComponent(
          engine, LegacyComponent::kSum, query, terms);
      const double count = LegacyEstimateComponent(
          engine, LegacyComponent::kCount, query, terms);
      if (count <= 0.0) return 0.0;
      return sum / count;
    }
    case AggregateKind::kStdev: {
      const double sum_sq = LegacyEstimateComponent(
          engine, LegacyComponent::kSumSq, query, terms);
      const double sum = LegacyEstimateComponent(
          engine, LegacyComponent::kSum, query, terms);
      const double count = LegacyEstimateComponent(
          engine, LegacyComponent::kCount, query, terms);
      if (count <= 0.0) return 0.0;
      const double mean = sum / count;
      return std::sqrt(std::max(0.0, sum_sq / count - mean * mean));
    }
  }
  return 0.0;
}

class PlanEquivalenceTest : public ::testing::TestWithParam<MechanismKind> {};

// The tentpole acceptance test: for every mechanism, thread count, and cache
// setting (estimate cache AND plan cache), the planned path answers every
// query with exactly the bits the legacy loop produces, and ExecuteBatch
// answers exactly like sequential Execute.
TEST_P(PlanEquivalenceTest, PlannedPathMatchesLegacyBitwise) {
  const MechanismKind kind = GetParam();
  const Table& table = TableFor(kind);
  const auto sqls = SqlsFor(kind);

  std::vector<Query> queries;
  for (const char* sql : sqls) {
    queries.push_back(ParseQuery(table.schema(), sql).ValueOrDie());
  }

  for (const int threads : {1, 2, 8}) {
    for (const bool cache_on : {true, false}) {
      EngineOptions options;
      options.mechanism = kind;
      options.params.epsilon = 2.0;
      options.params.hash_pool_size = 512;
      options.seed = 99;
      options.num_threads = threads;
      options.enable_estimate_cache = cache_on;
      options.enable_plan_cache = cache_on;
      const auto engine = AnalyticsEngine::Create(table, options).ValueOrDie();

      std::vector<double> sequential;
      for (size_t i = 0; i < queries.size(); ++i) {
        const double planned = engine->Execute(queries[i]).ValueOrDie();
        const double legacy = LegacyExecute(*engine, queries[i]);
        EXPECT_EQ(planned, legacy)
            << MechanismKindName(kind) << " threads=" << threads
            << " cache=" << cache_on << " query: " << sqls[i];
        sequential.push_back(planned);
        // Executing again (now a guaranteed plan-cache hit when enabled)
        // must reproduce the same bits.
        EXPECT_EQ(engine->Execute(queries[i]).ValueOrDie(), planned)
            << "repeat diverged: " << sqls[i];
      }

      std::vector<double> batched(queries.size(), 0.0);
      ASSERT_TRUE(engine->ExecuteBatch(queries, batched).ok());
      for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(batched[i], sequential[i])
            << MechanismKindName(kind) << " threads=" << threads
            << " cache=" << cache_on << " batch query: " << sqls[i];
      }
    }
  }
}

// ExecuteWithBound shares the plan with Execute: same estimate bits, a
// non-negative error bar, and no second rewrite (checked by counter in
// plan_cache_test).
TEST_P(PlanEquivalenceTest, BoundedEstimateMatchesExecute) {
  const MechanismKind kind = GetParam();
  const Table& table = TableFor(kind);
  EngineOptions options;
  options.mechanism = kind;
  options.params.epsilon = 2.0;
  options.params.hash_pool_size = 512;
  options.seed = 99;
  const auto engine = AnalyticsEngine::Create(table, options).ValueOrDie();

  const auto sqls = SqlsFor(kind);
  for (size_t i = 0; i < 2; ++i) {  // COUNT and SUM queries only
    const Query query = ParseQuery(table.schema(), sqls[i]).ValueOrDie();
    const double estimate = engine->Execute(query).ValueOrDie();
    const auto bounded = engine->ExecuteWithBound(query).ValueOrDie();
    EXPECT_EQ(bounded.estimate, estimate) << sqls[i];
    EXPECT_GE(bounded.stddev, 0.0) << sqls[i];
  }
}

// A batch with repeated and overlapping templated queries must answer every
// instance exactly like sequential execution while issuing strictly fewer
// mechanism estimate calls (the dedup acceptance criterion lives in
// BENCH_plan.json; here we assert the counter moved in the right direction).
TEST(PlanBatchTest, DedupSharesEstimatesBitIdentically) {
  const Table& table = TableFor(MechanismKind::kHio);
  EngineOptions options;
  options.mechanism = MechanismKind::kHio;
  options.params.epsilon = 2.0;
  options.seed = 7;
  const auto engine = AnalyticsEngine::Create(table, options).ValueOrDie();

  std::vector<Query> queries;
  const char* templates[] = {
      "SELECT COUNT(*) FROM T WHERE a BETWEEN 2 AND 9",
      "SELECT SUM(m) FROM T WHERE a BETWEEN 2 AND 9",
      "SELECT AVG(m) FROM T WHERE a BETWEEN 2 AND 9",
      "SELECT COUNT(*) FROM T WHERE b BETWEEN 1 AND 6",
  };
  for (int rep = 0; rep < 4; ++rep) {
    for (const char* sql : templates) {
      queries.push_back(ParseQuery(table.schema(), sql).ValueOrDie());
    }
  }

  std::vector<double> sequential;
  for (const Query& q : queries) {
    sequential.push_back(engine->Execute(q).ValueOrDie());
  }

  Counter* calls = GlobalMetrics().counter("plan.estimate_calls");
  Counter* dedup = GlobalMetrics().counter("plan.batch_dedup_hits");
  const uint64_t calls_before = calls->value();
  const uint64_t dedup_before = dedup->value();

  std::vector<double> batched(queries.size(), 0.0);
  ASSERT_TRUE(engine->ExecuteBatch(queries, batched).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i], sequential[i]) << "batch index " << i;
  }

  const uint64_t issued = calls->value() - calls_before;
  const uint64_t saved = dedup->value() - dedup_before;
  // 16 queries carry 20 (component, box) tasks, but only 3 are distinct:
  // COUNT/a, SUM/a, COUNT/b — AVG decomposes into SUM/a + COUNT/a, both
  // already seen.
  EXPECT_EQ(issued, 3u);
  EXPECT_GT(saved, issued);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, PlanEquivalenceTest,
    ::testing::Values(MechanismKind::kHi, MechanismKind::kHio,
                      MechanismKind::kSc, MechanismKind::kMg,
                      MechanismKind::kQuadTree, MechanismKind::kHaar,
                      MechanismKind::kHdg, MechanismKind::kCalm),
    [](const ::testing::TestParamInfo<MechanismKind>& info) {
      return MechanismKindName(info.param);
    });

}  // namespace
}  // namespace ldp
