// The obs -> planner feedback loop: PlanStatsStore unit behavior (EWMA
// smoothing, bounded eviction with secondary-index pruning), engine-level
// recording, the bit-identity contract (feedback on/off, threads, caches),
// EXPLAIN's predicted-vs-actual block and its warmup gating, measured-cost
// mechanism overrides, ExecuteWithBound's per-plan variance dispatch, and
// the ComparePlanStats replay-regression report.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "data/generator.h"
#include "engine/engine.h"
#include "mech/multi.h"
#include "obs/metrics.h"
#include "plan/stats_store.h"
#include "query/plan.h"

namespace ldp {
namespace {

Table SmallTable(uint64_t n = 2000, uint64_t seed = 77) {
  TableSpec spec;
  spec.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kUniform, 1.0});
  spec.dims.push_back(
      {"b", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kZipf, 1.1});
  spec.measures.push_back({"m", 0.0, 5.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, seed).ValueOrDie();
}

struct FeedbackEngineConfig {
  std::vector<MechanismKind> mechanisms = {MechanismKind::kHio,
                                           MechanismKind::kMg};
  bool feedback = true;
  int min_observations = 1;
  int threads = 1;
  bool estimate_cache = true;
  bool plan_cache = true;
};

std::unique_ptr<AnalyticsEngine> MakeEngine(const Table& table,
                                            const FeedbackEngineConfig& cfg) {
  EngineOptions options;
  options.mechanisms = cfg.mechanisms;
  options.params.epsilon = 2.0;
  options.params.hash_pool_size = 256;
  options.seed = 42;
  options.num_threads = cfg.threads;
  options.enable_estimate_cache = cfg.estimate_cache;
  options.enable_plan_cache = cfg.plan_cache;
  options.enable_feedback = cfg.feedback;
  options.feedback_min_observations = cfg.min_observations;
  return AnalyticsEngine::Create(table, options).ValueOrDie();
}

std::vector<Query> Workload(const Schema& schema) {
  const char* sqls[] = {
      "SELECT COUNT(*) FROM T WHERE a IN [2, 9]",
      "SELECT COUNT(*) FROM T WHERE a <= 5 OR b >= 10",
      "SELECT SUM(m) FROM T WHERE b IN [3, 12]",
      "SELECT AVG(m) FROM T WHERE a IN [1, 6] AND b IN [2, 13]",
  };
  std::vector<Query> queries;
  for (const char* sql : sqls) {
    queries.push_back(ParseQuery(schema, sql).ValueOrDie());
  }
  return queries;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string LineStartingWith(const std::string& text,
                             const std::string& prefix) {
  for (const auto& line : Lines(text)) {
    if (line.rfind(prefix, 0) == 0) return line;
  }
  return "";
}

PlanIdentity Identity(uint64_t fingerprint, uint64_t query_hash,
                      MechanismKind mechanism) {
  PlanIdentity id;
  id.fingerprint = fingerprint;
  id.query_hash = query_hash;
  id.mechanism = mechanism;
  return id;
}

PlanObservation Obs(uint64_t wall, uint64_t nodes, uint64_t calls = 1) {
  PlanObservation obs;
  obs.wall_nanos = wall;
  obs.fanout_nanos = wall / 4;
  obs.estimate_nanos = wall / 2;
  obs.estimate_calls = calls;
  obs.nodes_touched = nodes;
  return obs;
}

// --- PlanStatsStore units --------------------------------------------------

TEST(PlanStatsStoreTest, EwmaSeedsThenSmooths) {
  PlanStatsStore store(/*max_entries=*/16, /*alpha=*/0.25,
                       /*min_observations=*/3);
  const auto id = Identity(0xabc, 7, MechanismKind::kHio);
  store.Record(id, Obs(100, 40, 2));
  auto stats = store.Lookup(0xabc);
  ASSERT_TRUE(stats.has_value());
  // The first observation seeds the EWMA exactly.
  EXPECT_EQ(stats->observations, 1u);
  EXPECT_DOUBLE_EQ(stats->ewma_wall_nanos, 100.0);
  EXPECT_DOUBLE_EQ(stats->ewma_nodes, 40.0);
  EXPECT_DOUBLE_EQ(stats->ewma_estimate_calls, 2.0);

  store.Record(id, Obs(200, 80, 4));
  stats = store.Lookup(0xabc);
  ASSERT_TRUE(stats.has_value());
  // ewma += alpha * (v - ewma) with alpha = 0.25.
  EXPECT_EQ(stats->observations, 2u);
  EXPECT_DOUBLE_EQ(stats->ewma_wall_nanos, 125.0);
  EXPECT_DOUBLE_EQ(stats->ewma_nodes, 50.0);
  EXPECT_DOUBLE_EQ(stats->ewma_estimate_calls, 2.5);
  EXPECT_EQ(stats->id.query_hash, 7u);
  EXPECT_EQ(stats->id.mechanism, MechanismKind::kHio);
}

TEST(PlanStatsStoreTest, EvictionBoundsEntriesAndPrunesQueryIndex) {
  PlanStatsStore store(/*max_entries=*/2);
  store.Record(Identity(1, 10, MechanismKind::kHio), Obs(100, 1));
  store.Record(Identity(2, 20, MechanismKind::kHio), Obs(100, 1));
  store.Record(Identity(3, 30, MechanismKind::kHio), Obs(100, 1));
  EXPECT_EQ(store.size(), 2u);
  // Fingerprint 1 was least recently recorded: gone from the primary map AND
  // from the (query_hash, mechanism) index — a LookupByQuery must never
  // resolve to an evicted entry.
  EXPECT_FALSE(store.Lookup(1).has_value());
  EXPECT_FALSE(store.LookupByQuery(10, MechanismKind::kHio).has_value());
  EXPECT_TRUE(store.Lookup(2).has_value());
  EXPECT_TRUE(store.LookupByQuery(30, MechanismKind::kHio).has_value());

  // Re-recording an existing fingerprint refreshes recency instead of
  // evicting it.
  store.Record(Identity(2, 20, MechanismKind::kHio), Obs(100, 1));
  store.Record(Identity(4, 40, MechanismKind::kHio), Obs(100, 1));
  EXPECT_TRUE(store.Lookup(2).has_value());
  EXPECT_FALSE(store.Lookup(3).has_value());
  EXPECT_FALSE(store.LookupByQuery(30, MechanismKind::kHio).has_value());
}

TEST(PlanStatsStoreTest, LookupByQueryDistinguishesMechanisms) {
  PlanStatsStore store(16);
  store.Record(Identity(0x111, 5, MechanismKind::kHio), Obs(100, 10));
  store.Record(Identity(0x222, 5, MechanismKind::kMg), Obs(100, 99));
  const auto hio = store.LookupByQuery(5, MechanismKind::kHio);
  const auto mg = store.LookupByQuery(5, MechanismKind::kMg);
  ASSERT_TRUE(hio.has_value());
  ASSERT_TRUE(mg.has_value());
  EXPECT_EQ(hio->id.fingerprint, 0x111u);
  EXPECT_EQ(mg->id.fingerprint, 0x222u);
  EXPECT_DOUBLE_EQ(hio->ewma_nodes, 10.0);
  EXPECT_DOUBLE_EQ(mg->ewma_nodes, 99.0);
  EXPECT_FALSE(store.LookupByQuery(5, MechanismKind::kSc).has_value());
}

TEST(PlanStatsStoreTest, SnapshotIsFingerprintSortedAndClearEmpties) {
  PlanStatsStore store(16);
  store.Record(Identity(30, 1, MechanismKind::kHio), Obs(1, 1));
  store.Record(Identity(10, 2, MechanismKind::kHio), Obs(1, 1));
  store.Record(Identity(20, 3, MechanismKind::kHio), Obs(1, 1));
  const auto snapshot = store.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].id.fingerprint, 10u);
  EXPECT_EQ(snapshot[1].id.fingerprint, 20u);
  EXPECT_EQ(snapshot[2].id.fingerprint, 30u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Snapshot().empty());
  EXPECT_FALSE(store.Lookup(10).has_value());
  EXPECT_FALSE(store.LookupByQuery(2, MechanismKind::kHio).has_value());
}

// --- Replay regression detection -------------------------------------------

TEST(ReplayTest, FlagsArtificiallyInflatedFingerprint) {
  // Two recorded runs of the same two-plan workload; one plan's wall time is
  // inflated 3x in the current run — the report must name exactly it.
  PlanStatsStore baseline(16), current(16);
  const auto slow = Identity(0xdeadbeef, 1, MechanismKind::kHio);
  const auto steady = Identity(0x42, 2, MechanismKind::kMg);
  for (int i = 0; i < 3; ++i) {
    baseline.Record(slow, Obs(1000, 50));
    baseline.Record(steady, Obs(2000, 80));
    current.Record(slow, Obs(3000, 50));
    current.Record(steady, Obs(2000, 80));
  }

  const ReplayReport report = ComparePlanStats(baseline, current, 1.5);
  EXPECT_EQ(report.num_regressions, 1u);
  ASSERT_EQ(report.findings.size(), 2u);
  // Worst ratio first.
  EXPECT_EQ(report.findings[0].id.fingerprint, 0xdeadbeefu);
  EXPECT_TRUE(report.findings[0].regressed);
  EXPECT_DOUBLE_EQ(report.findings[0].ratio, 3.0);
  EXPECT_FALSE(report.findings[1].regressed);
  EXPECT_DOUBLE_EQ(report.findings[1].ratio, 1.0);
  EXPECT_TRUE(report.only_in_baseline.empty());
  EXPECT_TRUE(report.only_in_current.empty());

  // The renderings name the regressed fingerprint.
  EXPECT_NE(report.ToText().find("00000000deadbeef"), std::string::npos);
  EXPECT_NE(report.ToJson().find("00000000deadbeef"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"regressed\":true"), std::string::npos);
}

TEST(ReplayTest, DisjointFingerprintsAreReportedNotCompared) {
  PlanStatsStore baseline(16), current(16);
  baseline.Record(Identity(1, 1, MechanismKind::kHio), Obs(100, 1));
  current.Record(Identity(2, 2, MechanismKind::kHio), Obs(100, 1));
  const ReplayReport report = ComparePlanStats(baseline, current);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.num_regressions, 0u);
  ASSERT_EQ(report.only_in_baseline.size(), 1u);
  ASSERT_EQ(report.only_in_current.size(), 1u);
  EXPECT_EQ(report.only_in_baseline[0], 1u);
  EXPECT_EQ(report.only_in_current[0], 2u);
}

// --- Engine recording and bit-identity -------------------------------------

TEST(FeedbackEngineTest, ExecuteRecordsObservationsIntoTheStore) {
  const Table table = SmallTable();
  FeedbackEngineConfig cfg;
  const auto engine = MakeEngine(table, cfg);
  ASSERT_NE(engine->plan_stats(), nullptr);
  const Query query = Workload(table.schema())[0];

  Counter* records = GlobalMetrics().counter("plan.feedback_records");
  const uint64_t before = records->value();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine->Execute(query).ok());
  EXPECT_EQ(records->value() - before, 3u);

  const auto plan = engine->PlanFor(query).ValueOrDie();
  const auto stats = engine->plan_stats()->Lookup(plan->fingerprint);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->observations, 3u);
  EXPECT_GT(stats->ewma_nodes, 0.0);
  EXPECT_GT(stats->ewma_estimate_calls, 0.0);
  EXPECT_EQ(stats->id.mechanism, plan->mechanism);
  EXPECT_EQ(stats->id.query_hash,
            Checksum64(QueryCacheKey(table.schema(), query)));
}

TEST(FeedbackEngineTest, FeedbackOffLeavesTheStoreNull) {
  const Table table = SmallTable();
  FeedbackEngineConfig cfg;
  cfg.feedback = false;
  const auto engine = MakeEngine(table, cfg);
  EXPECT_EQ(engine->plan_stats(), nullptr);
}

TEST(FeedbackEngineTest, ResultsBitIdenticalAcrossThreadsAndCaches) {
  // The ISSUE's core contract: recording actuals and (potentially) ranking
  // by them must never perturb an answer. Feedback cost is EWMA nodes
  // touched — a deterministic work measure — so every (threads, cache)
  // configuration executes the same plans and returns the same bits.
  const Table table = SmallTable();
  const std::vector<Query> queries = Workload(table.schema());

  std::vector<double> golden;
  bool have_golden = false;
  for (const int threads : {1, 2, 8}) {
    for (const bool cache : {true, false}) {
      FeedbackEngineConfig cfg;
      cfg.threads = threads;
      cfg.estimate_cache = cache;
      const auto engine = MakeEngine(table, cfg);
      std::vector<double> answers;
      for (int rep = 0; rep < 3; ++rep) {  // reps re-plan against a warming store
        for (const Query& q : queries) {
          answers.push_back(engine->Execute(q).ValueOrDie());
        }
      }
      // The batched path records per-plan observations too; its answers must
      // match its own sequential pass bit for bit.
      std::vector<double> batched(queries.size(), 0.0);
      ASSERT_TRUE(engine->ExecuteBatch(queries, batched).ok());
      for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(batched[i], answers[i])
            << "batch diverged at query " << i << " threads=" << threads
            << " cache=" << cache;
      }
      if (!have_golden) {
        golden = answers;
        have_golden = true;
        continue;
      }
      ASSERT_EQ(answers.size(), golden.size());
      for (size_t i = 0; i < answers.size(); ++i) {
        EXPECT_EQ(answers[i], golden[i])
            << "answer " << i << " diverged at threads=" << threads
            << " cache=" << cache;
      }
    }
  }
}

TEST(FeedbackEngineTest, NodesTouchedInvariantToEstimateCache) {
  // The recorded work measure counts cache probes (hits + misses) when the
  // estimate cache is on and kernel-estimated nodes when it is off — the
  // same total either way. This is what makes feedback ranking safe to
  // compare across deployments with different cache settings.
  const Table table = SmallTable();
  const Query query = Workload(table.schema())[0];

  FeedbackEngineConfig on, off;
  off.estimate_cache = false;
  const auto cached = MakeEngine(table, on);
  const auto uncached = MakeEngine(table, off);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cached->Execute(query).ok());
    ASSERT_TRUE(uncached->Execute(query).ok());
  }
  const auto plan = cached->PlanFor(query).ValueOrDie();
  const auto a = cached->plan_stats()->Lookup(plan->fingerprint);
  const auto b = uncached->plan_stats()->Lookup(plan->fingerprint);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->ewma_nodes, b->ewma_nodes);
  EXPECT_DOUBLE_EQ(a->ewma_estimate_calls, b->ewma_estimate_calls);
}

TEST(FeedbackEngineTest, FeedbackOnMatchesFeedbackOffBitForBit) {
  const Table table = SmallTable();
  const std::vector<Query> queries = Workload(table.schema());

  FeedbackEngineConfig off_cfg;
  off_cfg.feedback = false;
  const auto off = MakeEngine(table, off_cfg);
  FeedbackEngineConfig on_cfg;
  on_cfg.min_observations = 1;  // warms as fast as possible
  const auto on = MakeEngine(table, on_cfg);

  // Even with an instantly warming store, natural execution only ever
  // observes the chosen mechanism — the all-candidates-warmed gate keeps
  // the analytic choice, so answers match the feedback-off engine exactly.
  for (int rep = 0; rep < 5; ++rep) {
    for (const Query& q : queries) {
      EXPECT_EQ(on->Execute(q).ValueOrDie(), off->Execute(q).ValueOrDie());
    }
  }
}

// --- EXPLAIN: predicted-vs-actual and warmup gating -------------------------

TEST(FeedbackExplainTest, BlockAppearsOnlyAfterWarmup) {
  const Table table = SmallTable();
  FeedbackEngineConfig cfg;
  cfg.min_observations = 3;
  // No plan cache: PlanFor re-plans against the live store, so the plan
  // object itself (not just Explain's overlay) carries fresh feedback.
  cfg.plan_cache = false;
  const auto engine = MakeEngine(table, cfg);
  const Query query = Workload(table.schema())[0];

  // Unobserved and under-observed plans render exactly the feedback-off
  // text: no "feedback:" block before K observations.
  EXPECT_EQ(LineStartingWith(engine->Explain(query).ValueOrDie(), "feedback:"),
            "");
  ASSERT_TRUE(engine->Execute(query).ok());
  ASSERT_TRUE(engine->Execute(query).ok());
  EXPECT_EQ(LineStartingWith(engine->Explain(query).ValueOrDie(), "feedback:"),
            "");

  ASSERT_TRUE(engine->Execute(query).ok());
  const std::string text = engine->Explain(query).ValueOrDie();
  EXPECT_EQ(LineStartingWith(text, "feedback:"), "feedback:");
  EXPECT_EQ(LineStartingWith(text, "  observations:"), "  observations: 3");
  EXPECT_EQ(LineStartingWith(text, "  overrode:"), "  overrode: 0");
  // The deterministic predicted-vs-actual rows: predictions come from the
  // plan's cost annotations, actuals from the store's EWMA.
  const auto plan = engine->PlanFor(query).ValueOrDie();
  const auto stats = engine->plan_stats()->Lookup(plan->fingerprint);
  ASSERT_TRUE(stats.has_value());
  const std::string calls = LineStartingWith(text, "  estimate_calls:");
  EXPECT_NE(calls.find("predicted="), std::string::npos) << calls;
  EXPECT_NE(calls.find("actual~"), std::string::npos) << calls;
  const std::string nodes = LineStartingWith(text, "  node_estimates:");
  EXPECT_NE(
      nodes.find("predicted=" + std::to_string(plan->predicted_node_estimates)),
      std::string::npos)
      << nodes;
  EXPECT_NE(LineStartingWith(text, "  wall_nanos:").find("actual~"),
            std::string::npos);

  // The JSON rendering carries the same block.
  const std::string json =
      engine->PlanFor(query).ValueOrDie()->ToJson(table.schema());
  EXPECT_NE(json.find("\"feedback\":{\"observations\":3"), std::string::npos);
}

TEST(FeedbackExplainTest, WarmedExplainIsGoldenTextPlusFeedbackBlock) {
  // Observation must not change anything else about the plan or its
  // rendering: stripping the feedback block from the warmed EXPLAIN yields
  // the feedback-off engine's EXPLAIN verbatim — same fingerprint line
  // included, since the block is excluded from the fingerprint.
  const Table table = SmallTable();
  FeedbackEngineConfig on_cfg;
  on_cfg.min_observations = 1;
  const auto on = MakeEngine(table, on_cfg);
  FeedbackEngineConfig off_cfg;
  off_cfg.feedback = false;
  const auto off = MakeEngine(table, off_cfg);
  const Query query = Workload(table.schema())[1];

  ASSERT_TRUE(on->Execute(query).ok());
  const std::vector<std::string> off_lines =
      Lines(off->Explain(query).ValueOrDie());
  std::vector<std::string> on_lines = Lines(on->Explain(query).ValueOrDie());
  const auto block = std::find(on_lines.begin(), on_lines.end(), "feedback:");
  ASSERT_NE(block, on_lines.end());
  on_lines.erase(block, block + 6);  // "feedback:" + five detail rows
  EXPECT_EQ(on_lines, off_lines);

  EXPECT_EQ(on->PlanFor(query).ValueOrDie()->fingerprint,
            off->PlanFor(query).ValueOrDie()->fingerprint);
}

// --- Measured-cost override and per-plan variance dispatch ------------------

/// Fabricates a fully warmed store for `query` that makes `winner` measure
/// cheapest, so the next Plan() must pick it regardless of analytic scores.
void WarmStoreTowards(AnalyticsEngine* engine, const Query& query,
                      MechanismKind winner,
                      const std::vector<MechanismKind>& kinds) {
  const uint64_t query_hash =
      Checksum64(QueryCacheKey(engine->schema(), query));
  uint64_t fake_fingerprint = 0xf00d;
  for (const MechanismKind kind : kinds) {
    const uint64_t nodes = kind == winner ? 1 : 1000000;
    for (uint64_t i = 0; i < engine->plan_stats()->min_observations(); ++i) {
      engine->plan_stats()->Record(Identity(fake_fingerprint, query_hash, kind),
                                   Obs(100, nodes));
    }
    ++fake_fingerprint;
  }
}

TEST(FeedbackOverrideTest, MeasuredCostOverridesAnalyticChoice) {
  const Table table = SmallTable();
  FeedbackEngineConfig cfg;
  cfg.plan_cache = false;  // every PlanFor re-plans against the live store
  const auto engine = MakeEngine(table, cfg);
  const Query query = Workload(table.schema())[0];

  const auto analytic = engine->PlanFor(query).ValueOrDie();
  EXPECT_FALSE(analytic->feedback.overrode);
  ASSERT_EQ(analytic->candidates.size(), 2u);

  // Make the analytically rejected candidate measure cheapest.
  const MechanismKind loser = analytic->mechanism == MechanismKind::kHio
                                  ? MechanismKind::kMg
                                  : MechanismKind::kHio;
  WarmStoreTowards(engine.get(), query, loser, cfg.mechanisms);

  Counter* overrides = GlobalMetrics().counter("plan.feedback_overrides");
  const uint64_t before = overrides->value();
  const auto overridden = engine->PlanFor(query).ValueOrDie();
  EXPECT_EQ(overridden->mechanism, loser);
  EXPECT_TRUE(overridden->feedback.overrode);
  EXPECT_EQ(overrides->value() - before, 1u);
  // The override picks a different strategy, not different garbage: the
  // plan still executes.
  EXPECT_TRUE(engine->Execute(query).ok());

  // Agreement (measured winner == analytic winner) is a hit, not an
  // override. Start from an empty store — the fabricated entries above
  // would otherwise keep biasing the EWMA.
  engine->plan_stats()->Clear();
  WarmStoreTowards(engine.get(), query, analytic->mechanism, cfg.mechanisms);
  const auto agreed = engine->PlanFor(query).ValueOrDie();
  EXPECT_EQ(agreed->mechanism, analytic->mechanism);
  EXPECT_FALSE(agreed->feedback.overrode);
}

TEST(FeedbackOverrideTest, PartialWarmupKeepsTheAnalyticChoice) {
  // Only one candidate warmed: comparing a measurement against an analytic
  // proxy would bias toward whichever ran first, so the gate requires every
  // feasible candidate to be warmed.
  const Table table = SmallTable();
  FeedbackEngineConfig cfg;
  cfg.plan_cache = false;
  const auto engine = MakeEngine(table, cfg);
  const Query query = Workload(table.schema())[0];
  const auto analytic = engine->PlanFor(query).ValueOrDie();

  const MechanismKind loser = analytic->mechanism == MechanismKind::kHio
                                  ? MechanismKind::kMg
                                  : MechanismKind::kHio;
  const uint64_t query_hash =
      Checksum64(QueryCacheKey(engine->schema(), query));
  engine->plan_stats()->Record(Identity(0xf00d, query_hash, loser),
                               Obs(100, 1));

  const auto plan = engine->PlanFor(query).ValueOrDie();
  EXPECT_EQ(plan->mechanism, analytic->mechanism);
  EXPECT_FALSE(plan->feedback.overrode);
}

TEST(FeedbackOverrideTest, ExecuteWithBoundUsesThePlansMechanism) {
  // The RunWithBound regression: on a composite engine the variance bound
  // used to route through MultiMechanism::VarianceBound's own shape-based
  // sub selection, ignoring plan.mechanism — so a feedback (or cost-model)
  // override would report an error bar for a mechanism the plan never ran.
  const Table table = SmallTable();
  FeedbackEngineConfig cfg;
  cfg.plan_cache = false;
  const auto engine = MakeEngine(table, cfg);
  const Query query =
      ParseQuery(table.schema(), "SELECT COUNT(*) FROM T WHERE a IN [2, 9]")
          .ValueOrDie();

  const auto* multi =
      dynamic_cast<const MultiMechanism*>(&engine->mechanism());
  ASSERT_NE(multi, nullptr);

  const auto analytic = engine->PlanFor(query).ValueOrDie();
  const MechanismKind loser = analytic->mechanism == MechanismKind::kHio
                                  ? MechanismKind::kMg
                                  : MechanismKind::kHio;
  WarmStoreTowards(engine.get(), query, loser, cfg.mechanisms);
  const auto plan = engine->PlanFor(query).ValueOrDie();
  ASSERT_EQ(plan->mechanism, loser);

  // COUNT with no public constraints weights every user 1.
  const WeightVector ones = WeightVector::Ones(table.num_rows());
  double expected = 0.0;
  for (const auto& term : plan->logical.terms) {
    const double variance =
        multi->VarianceBoundWith(plan->mechanism, term.sensitive, ones)
            .ValueOrDie();
    expected += std::abs(term.coefficient) *
                std::sqrt(std::max(variance, 0.0));
  }
  // The two candidates bound differently — otherwise dispatch is untestable.
  double other = 0.0;
  for (const auto& term : plan->logical.terms) {
    other += std::abs(term.coefficient) *
             std::sqrt(std::max(
                 multi
                     ->VarianceBoundWith(analytic->mechanism, term.sensitive,
                                         ones)
                     .ValueOrDie(),
                 0.0));
  }
  ASSERT_NE(expected, other);

  const auto bounded = engine->ExecuteWithBound(query).ValueOrDie();
  EXPECT_DOUBLE_EQ(bounded.stddev, expected);
}

}  // namespace
}  // namespace ldp
