// Characterization of the OLH seed-pooling tradeoff (see DESIGN.md): a
// finite pool of K hash functions has fixed pairwise collision-rate
// deviations ~1/sqrt(gK) which the unbiasing scale turns into a conditional
// bias — worst for tiny pools at small per-report budgets (g = 2), and
// negligible for the pool sizes the benches use. These tests pin down both
// regimes so a regression in either direction is caught.

#include <cmath>

#include <gtest/gtest.h>

#include "fo/olh.h"

namespace ldp {
namespace {

// Mean estimate over repeated encodings of a FIXED dataset with a FIXED
// pool; deviations from the truth that survive averaging are the
// pool-conditional bias.
double MeanEstimate(uint32_t pool, double eps, uint64_t n, int runs,
                    uint64_t probe, uint64_t seed) {
  const OlhProtocol proto(eps, 16, pool);
  Rng rng(seed);
  double sum = 0.0;
  for (int run = 0; run < runs; ++run) {
    OlhAccumulator acc(proto);
    for (uint64_t u = 0; u < n; ++u) {
      acc.Add(proto.Encode(u % 16, rng), u);
    }
    sum += acc.EstimateWeighted(probe, WeightVector::Ones(n));
  }
  return sum / runs;
}

TEST(PoolingBiasTest, TinyPoolAtSmallEpsilonIsVisiblyBiased) {
  // eps = 0.4 -> g = 2, pool of 8: collision-rate deviations ~1/4 get
  // amplified by the scale factor; the conditional bias dwarfs the standard
  // error of the mean. This is exactly why small pools at split budgets are
  // wrong, and why the library defaults to pool = 0.
  const uint64_t n = 4000;
  const int runs = 150;
  const double truth = n / 16.0;
  double worst_bias = 0.0;
  for (uint64_t probe = 0; probe < 4; ++probe) {
    const double mean =
        MeanEstimate(/*pool=*/8, /*eps=*/0.4, n, runs, probe, 1234);
    worst_bias = std::max(worst_bias, std::abs(mean - truth));
  }
  // Lemma 3 variance at eps=0.4, g=2: ~4 n e^eps/(e^eps-1)^2 ~ 100k ->
  // std ~ 320, SE of the mean over 150 runs ~ 26.
  EXPECT_GT(worst_bias, 100.0);
}

TEST(PoolingBiasTest, UnpooledIsUnbiased) {
  const uint64_t n = 4000;
  const int runs = 150;
  const double truth = n / 16.0;
  for (uint64_t probe = 0; probe < 4; ++probe) {
    const double mean =
        MeanEstimate(/*pool=*/0, /*eps=*/0.4, n, runs, probe, 1234);
    // 4 standard errors of the mean.
    EXPECT_NEAR(mean, truth, 4.0 * 320.0 / std::sqrt(150.0))
        << "probe " << probe;
  }
}

TEST(PoolingBiasTest, BenchSizedPoolBiasIsNegligible) {
  // The benches use pool = 1024 at eps >= 2 (g >= 8): the conditional bias
  // ~coeff/sqrt(gK) of the out-weight is far below the noise floor.
  const uint64_t n = 4000;
  const int runs = 120;
  const double truth = n / 16.0;
  for (uint64_t probe = 0; probe < 4; ++probe) {
    const double mean =
        MeanEstimate(/*pool=*/1024, /*eps=*/2.0, n, runs, probe, 999);
    // Lemma 3 at eps=2: std ~ sqrt(4 n e^2/(e^2-1)^2) ~ 76; SE ~ 7. Allow
    // bias + 4 SE within ~5% of the truth.
    EXPECT_NEAR(mean, truth, truth * 0.15) << "probe " << probe;
  }
}

}  // namespace
}  // namespace ldp
