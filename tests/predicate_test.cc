#include "query/predicate.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 100).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 4).ok());
  EXPECT_TRUE(schema.AddPublicDimension("os", 2).ok());
  EXPECT_TRUE(schema.AddMeasure("m").ok());
  return schema;
}

Table TestTable() {
  Table table(TestSchema());
  //                     age state os   m
  EXPECT_TRUE(table.AppendRow({30, 1, 0}, {1.0}).ok());
  EXPECT_TRUE(table.AppendRow({60, 2, 1}, {2.0}).ok());
  EXPECT_TRUE(table.AppendRow({45, 1, 1}, {3.0}).ok());
  return table;
}

TEST(PredicateTest, ConstraintEval) {
  const Table table = TestTable();
  const PredicatePtr p = Predicate::MakeConstraint(0, {30, 50});
  EXPECT_TRUE(p->EvalRow(table, 0));   // 30
  EXPECT_FALSE(p->EvalRow(table, 1));  // 60
  EXPECT_TRUE(p->EvalRow(table, 2));   // 45
}

TEST(PredicateTest, EqualsEval) {
  const Table table = TestTable();
  const PredicatePtr p = Predicate::MakeEquals(1, 1);
  EXPECT_TRUE(p->EvalRow(table, 0));
  EXPECT_FALSE(p->EvalRow(table, 1));
}

TEST(PredicateTest, EmptyRangeIsAlwaysFalse) {
  const Table table = TestTable();
  const PredicatePtr p = Predicate::MakeConstraint(0, {1, 0});
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_FALSE(p->EvalRow(table, r));
  }
}

TEST(PredicateTest, AndOrEval) {
  const Table table = TestTable();
  const PredicatePtr age = Predicate::MakeConstraint(0, {30, 50});
  const PredicatePtr state = Predicate::MakeEquals(1, 2);
  const PredicatePtr both = Predicate::MakeAnd({age, state});
  const PredicatePtr either = Predicate::MakeOr({age, state});
  EXPECT_FALSE(both->EvalRow(table, 0));   // age yes, state no
  EXPECT_FALSE(both->EvalRow(table, 1));   // age no, state yes
  EXPECT_TRUE(either->EvalRow(table, 0));
  EXPECT_TRUE(either->EvalRow(table, 1));
  EXPECT_TRUE(either->EvalRow(table, 2));
}

TEST(PredicateTest, NotEval) {
  const Table table = TestTable();
  const PredicatePtr age = Predicate::MakeConstraint(0, {30, 50});
  const PredicatePtr not_age = Predicate::MakeNot(age);
  EXPECT_FALSE(not_age->EvalRow(table, 0));  // 30 in range
  EXPECT_TRUE(not_age->EvalRow(table, 1));   // 60 outside
  // Double negation collapses to the original node.
  EXPECT_EQ(Predicate::MakeNot(not_age).get(), age.get());
}

TEST(PredicateTest, NotToString) {
  const Schema schema = TestSchema();
  const PredicatePtr p =
      Predicate::MakeNot(Predicate::MakeEquals(1, 2));
  EXPECT_EQ(p->ToString(schema), "NOT state = 2");
}

TEST(PredicateTest, SingleChildCollapses) {
  const PredicatePtr c = Predicate::MakeEquals(0, 5);
  EXPECT_EQ(Predicate::MakeAnd({c}).get(), c.get());
  EXPECT_EQ(Predicate::MakeOr({c}).get(), c.get());
}

TEST(PredicateTest, CollectAttributesDeduplicates) {
  const PredicatePtr p = Predicate::MakeAnd(
      {Predicate::MakeConstraint(0, {1, 2}),
       Predicate::MakeOr({Predicate::MakeEquals(1, 0),
                          Predicate::MakeConstraint(0, {5, 9})})});
  std::vector<int> attrs;
  p->CollectAttributes(&attrs);
  EXPECT_EQ(attrs, (std::vector<int>{0, 1}));
}

TEST(PredicateTest, ReferencesOnly) {
  const Schema schema = TestSchema();
  const PredicatePtr sensitive_only = Predicate::MakeAnd(
      {Predicate::MakeConstraint(0, {1, 2}), Predicate::MakeEquals(1, 0)});
  const PredicatePtr with_public = Predicate::MakeAnd(
      {Predicate::MakeConstraint(0, {1, 2}), Predicate::MakeEquals(2, 0)});
  auto is_sensitive = [&](int attr) {
    return IsSensitive(schema.attribute(attr).kind);
  };
  EXPECT_TRUE(sensitive_only->ReferencesOnly(is_sensitive));
  EXPECT_FALSE(with_public->ReferencesOnly(is_sensitive));
}

TEST(PredicateTest, ToString) {
  const Schema schema = TestSchema();
  const PredicatePtr p = Predicate::MakeOr(
      {Predicate::MakeAnd({Predicate::MakeConstraint(0, {30, 40}),
                           Predicate::MakeEquals(1, 2)}),
       Predicate::MakeConstraint(0, {80, 90})});
  const std::string s = p->ToString(schema);
  EXPECT_NE(s.find("age IN [30, 40]"), std::string::npos);
  EXPECT_NE(s.find("state = 2"), std::string::npos);
  EXPECT_NE(s.find("OR"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
}

}  // namespace
}  // namespace ldp
