#include "common/privacy_math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(OlhParamsTest, OptimalG) {
  // g = round(e^eps) + 1.
  EXPECT_EQ(OptimalOlhG(1.0), 4u);    // e ~ 2.718 -> 3 + 1
  EXPECT_EQ(OptimalOlhG(2.0), 8u);    // e^2 ~ 7.39 -> 7 + 1
  EXPECT_EQ(OptimalOlhG(std::log(4.0)), 5u);
  EXPECT_GE(OptimalOlhG(0.1), 2u);    // never below binary
}

TEST(OlhParamsTest, ProbabilitiesAreConsistent) {
  const double eps = 2.0;
  const uint32_t g = OptimalOlhG(eps);
  const double p = OlhP(eps, g);
  const double q = OlhQ(g);
  EXPECT_GT(p, q);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  EXPECT_DOUBLE_EQ(q, 1.0 / g);
  EXPECT_DOUBLE_EQ(OlhScale(eps, g), 1.0 / (p - q));
}

TEST(OlhParamsTest, LdpRatioHolds) {
  // The encode distribution must satisfy the eps-LDP ratio: stay/flip = e^eps.
  for (double eps : {0.5, 1.0, 2.0, 5.0}) {
    const uint32_t g = OptimalOlhG(eps);
    const double e = std::exp(eps);
    const double stay = e / (e + g - 1.0);
    const double flip = 1.0 / (e + g - 1.0);
    EXPECT_NEAR(stay / flip, e, 1e-9);
  }
}

TEST(VarianceTest, Lemma3MatchesGeneralGAtOptimalG) {
  // At g = e^eps + 1 the general-g formula reduces to 4 n e^eps/(e^eps-1)^2.
  const double eps = std::log(7.0);  // e^eps = 7 exactly -> g = 8
  const uint32_t g = OptimalOlhG(eps);
  ASSERT_EQ(g, 8u);
  const double n = 10000.0;
  EXPECT_NEAR(OlhVarianceGeneralG(eps, g, n), Lemma3OlhVariance(eps, n, 0.0),
              Lemma3OlhVariance(eps, n, 0.0) * 0.01);
}

TEST(VarianceTest, Prop4BoundDominatesVariance) {
  const double eps = 1.0;
  const double m2 = 5000.0;
  // Bound must dominate the exact expression for any split of m2.
  for (double m2v : {0.0, 100.0, 1000.0, m2}) {
    EXPECT_LE(Prop4WeightedVariance(eps, m2, m2v),
              Prop4WeightedVarianceBound(eps, m2) + 1e-9);
  }
}

TEST(VarianceTest, Prop5ReducesToProp4AtK1) {
  const double eps = 1.5;
  EXPECT_NEAR(Prop5SampledVariance(eps, 1.0, 1000.0, 50.0),
              Prop4WeightedVariance(eps, 1000.0, 50.0), 1e-9);
}

TEST(VarianceTest, Prop5BoundDominates) {
  const double eps = 1.0;
  for (double k : {1.0, 2.0, 8.0}) {
    for (double m2v : {0.0, 500.0, 1000.0}) {
      EXPECT_LE(Prop5SampledVariance(eps, k, 1000.0, m2v),
                Prop5SampledVarianceBound(eps, k, 1000.0) + 1e-9);
    }
  }
}

TEST(VarianceTest, Prop5GrowsLinearlyInK) {
  const double eps = 2.0;
  const double v1 = Prop5SampledVarianceBound(eps, 1.0, 1000.0);
  const double v4 = Prop5SampledVarianceBound(eps, 4.0, 1000.0);
  EXPECT_NEAR(v4 / v1, 4.0, 1e-9);
}

TEST(DecompositionBoundTest, MatchesFormula) {
  // 2 (b-1) ceil(log_b m).
  EXPECT_EQ(MaxDecomposedIntervals(2, 8), 2u * 1 * 3);
  EXPECT_EQ(MaxDecomposedIntervals(5, 1024), 2u * 4 * 5);  // 5^5 = 3125 >= 1024
  EXPECT_EQ(MaxDecomposedIntervals(5, 125), 2u * 4 * 3);
  EXPECT_EQ(MaxDecomposedIntervals(2, 2), 2u * 1 * 1);
}

TEST(CeilLogBTest, ExactPowersAndOffByOne) {
  EXPECT_EQ(CeilLogB(2, 1), 1);  // clamped to >= 1
  EXPECT_EQ(CeilLogB(2, 2), 1);
  EXPECT_EQ(CeilLogB(2, 3), 2);
  EXPECT_EQ(CeilLogB(2, 1024), 10);
  EXPECT_EQ(CeilLogB(2, 1025), 11);
  EXPECT_EQ(CeilLogB(5, 125), 3);
  EXPECT_EQ(CeilLogB(5, 126), 4);
  EXPECT_EQ(CeilLogB(10, 1000000), 6);
}

TEST(CeilLogBTest, Uint64BoundaryTerminates) {
  // Regression: the running power used to wrap in uint64 for m near 2^64
  // (for b=2, cap reached 2^63 < m, doubled to 0, and the loop spun
  // forever). The overflow guard must make these return, with the
  // mathematically exact answer.
  EXPECT_EQ(CeilLogB(2, 1ull << 63), 63);            // exact power: cap hits m
  EXPECT_EQ(CeilLogB(2, (1ull << 63) + 1), 64);      // first wrapping input
  EXPECT_EQ(CeilLogB(2, UINT64_MAX), 64);            // 2^64 - 1
  EXPECT_EQ(CeilLogB(3, UINT64_MAX), 41);            // 3^40 < 2^64-1 < 3^41
  EXPECT_EQ(CeilLogB(5, UINT64_MAX), 28);            // 5^27 < 2^64-1 < 5^28
  EXPECT_EQ(CeilLogB(UINT32_MAX, UINT64_MAX), 3);    // (2^32-1)^2 < 2^64-1
  // The decomposition bound built on it must terminate too.
  EXPECT_EQ(MaxDecomposedIntervals(2, UINT64_MAX), 2u * 1 * 64);
}

TEST(TheoremBoundsTest, HioBeatsHi) {
  // Theorem 7's bound should be well below Theorem 6's (budget splitting
  // inflates the per-level noise exponentially in h).
  const double eps = 1.0;
  const double m2 = 1e6;
  EXPECT_LT(Theorem7HioBound(eps, 5, 1024, m2),
            Theorem6HiBound(eps, 5, 1024, m2));
}

TEST(TheoremBoundsTest, MultiDimHioBeatsHi) {
  const double eps = 1.0;
  const double m2 = 1e6;
  EXPECT_LT(Theorem9HioBound(eps, 5, 256, 2, 2, m2),
            Theorem8HiBound(eps, 5, 256, 2, 2, m2));
}

TEST(TheoremBoundsTest, ErrorGrowsWithQueryDims) {
  const double eps = 2.0;
  const double m2 = 1e6;
  EXPECT_LT(Theorem9HioBound(eps, 5, 54, 4, 1, m2),
            Theorem9HioBound(eps, 5, 54, 4, 2, m2));
}

TEST(TheoremBoundsTest, MarginalBaselineLinearInCells) {
  const double eps = 1.0;
  EXPECT_NEAR(MarginalBaselineVariance(eps, 200.0, 1e6) /
                  MarginalBaselineVariance(eps, 100.0, 1e6),
              2.0, 1e-9);
}

TEST(TheoremBoundsTest, HioCrossoverWithMarginal) {
  // Section 5.4: MG beats HIO only for very small boxes; for a wide range
  // the hierarchical bound must win. Compare eq. (11) with Theorem 7.
  const double eps = 2.0;
  const double m2 = 1e6;
  const uint64_t m = 1024;
  const double hio = Theorem7HioBound(eps, 5, m, m2);
  EXPECT_LT(hio, MarginalBaselineVariance(eps, 0.8 * m, m2));
  EXPECT_GT(hio, MarginalBaselineVariance(eps, 2.0, m2));
}

TEST(TheoremBoundsTest, ScAsymptoticSensitivity) {
  // Theorem 11: error grows with d and dq, shrinks with eps.
  EXPECT_LT(Theorem11ScAsymptotic(2.0, 54, 4, 1, 1e6, 99),
            Theorem11ScAsymptotic(2.0, 54, 8, 1, 1e6, 99));
  EXPECT_LT(Theorem11ScAsymptotic(2.0, 54, 4, 1, 1e6, 99),
            Theorem11ScAsymptotic(2.0, 54, 4, 2, 1e6, 99));
  EXPECT_GT(Theorem11ScAsymptotic(1.0, 54, 4, 1, 1e6, 99),
            Theorem11ScAsymptotic(2.0, 54, 4, 1, 1e6, 99));
}

}  // namespace
}  // namespace ldp
