#include "engine/protocol.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 54).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 6).ok());
  EXPECT_TRUE(schema.AddPublicDimension("os", 2).ok());  // not collected
  EXPECT_TRUE(schema.AddMeasure("purchase").ok());       // not collected
  return schema;
}

CollectionSpec TestSpec() {
  MechanismParams params;
  params.epsilon = 2.0;
  params.fanout = 5;
  return CollectionSpec::FromSchema(TestSchema(), MechanismKind::kHio, params);
}

TEST(CollectionSpecTest, FromSchemaKeepsOnlySensitiveDims) {
  const CollectionSpec spec = TestSpec();
  ASSERT_EQ(spec.sensitive_attributes.size(), 2u);
  EXPECT_EQ(spec.sensitive_attributes[0].name, "age");
  EXPECT_EQ(spec.sensitive_attributes[1].name, "state");
}

TEST(CollectionSpecTest, SerializeParseRoundTrip) {
  const CollectionSpec spec = TestSpec();
  const std::string text = spec.Serialize();
  const CollectionSpec back = CollectionSpec::Parse(text).ValueOrDie();
  EXPECT_EQ(back.mechanism, spec.mechanism);
  EXPECT_DOUBLE_EQ(back.params.epsilon, spec.params.epsilon);
  EXPECT_EQ(back.params.fanout, spec.params.fanout);
  EXPECT_EQ(back.params.fo_kind, spec.params.fo_kind);
  EXPECT_EQ(back.params.hash_pool_size, spec.params.hash_pool_size);
  ASSERT_EQ(back.sensitive_attributes.size(), 2u);
  EXPECT_EQ(back.sensitive_attributes[0].name, "age");
  EXPECT_EQ(back.sensitive_attributes[0].kind,
            AttributeKind::kSensitiveOrdinal);
  EXPECT_EQ(back.sensitive_attributes[0].domain_size, 54u);
  EXPECT_EQ(back.sensitive_attributes[1].kind,
            AttributeKind::kSensitiveCategorical);
}

TEST(CollectionSpecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(CollectionSpec::Parse("").ok());
  EXPECT_FALSE(CollectionSpec::Parse("not a spec\n").ok());
  const char* header = "ldpmda-collection-spec v1\n";
  EXPECT_FALSE(CollectionSpec::Parse(header).ok());  // no dims
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "bogus\n").ok());
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "mechanism=alien\n").ok());
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "dim=x weird 5\n").ok());
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "dim=x ordinal 0\n").ok());
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "fanout=1\ndim=x ordinal 4\n")
          .ok());
}

TEST(CollectionSpecTest, ParseIgnoresCommentsAndBlankLines) {
  const std::string text =
      "ldpmda-collection-spec v1\n"
      "# a comment\n"
      "\n"
      "mechanism=sc\n"
      "epsilon=1.5\n"
      "dim=a ordinal 16\n";
  const CollectionSpec spec = CollectionSpec::Parse(text).ValueOrDie();
  EXPECT_EQ(spec.mechanism, MechanismKind::kSc);
  EXPECT_DOUBLE_EQ(spec.params.epsilon, 1.5);
}

TEST(CollectionSpecTest, MultiMechanismRoundTrip) {
  MechanismParams params;
  params.epsilon = 2.0;
  params.population_hint = 30000;
  const std::vector<MechanismKind> kinds = {MechanismKind::kHio,
                                            MechanismKind::kHdg};
  const CollectionSpec spec =
      CollectionSpec::FromSchema(TestSchema(), kinds, params);
  EXPECT_EQ(spec.mechanism, MechanismKind::kHio);
  EXPECT_EQ(spec.mechanisms, kinds);

  const std::string text = spec.Serialize();
  EXPECT_NE(text.find("mechanism=hio,hdg"), std::string::npos) << text;
  EXPECT_NE(text.find("hint=30000"), std::string::npos) << text;
  const CollectionSpec back = CollectionSpec::Parse(text).ValueOrDie();
  EXPECT_EQ(back.mechanism, MechanismKind::kHio);
  EXPECT_EQ(back.mechanisms, kinds);
  EXPECT_EQ(back.params.population_hint, 30000u);

  // A single-kind list round-trips to the classic single-mechanism form.
  const CollectionSpec single = CollectionSpec::FromSchema(
      TestSchema(), std::vector<MechanismKind>{MechanismKind::kSc}, params);
  EXPECT_EQ(single.mechanism, MechanismKind::kSc);
  EXPECT_TRUE(single.mechanisms.empty());
  const CollectionSpec single_back =
      CollectionSpec::Parse(single.Serialize()).ValueOrDie();
  EXPECT_EQ(single_back.mechanism, MechanismKind::kSc);
  EXPECT_TRUE(single_back.mechanisms.empty());

  // Malformed lists are named errors.
  const char* header = "ldpmda-collection-spec v1\n";
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) +
                            "mechanism=hio,alien\ndim=x ordinal 4\n")
          .ok());
  EXPECT_FALSE(CollectionSpec::Parse(std::string(header) +
                                     "hint=-5\ndim=x ordinal 4\n")
                   .ok());
}

TEST(ProtocolTest, MultiMechanismClientServerEndToEnd) {
  // Two registered mechanisms over one wire population: each client spends
  // its whole budget on one uniformly drawn mechanism, and the server
  // reconstructs population estimates from either cohort.
  MechanismParams params;
  params.epsilon = 2.0;
  const std::vector<MechanismKind> kinds = {MechanismKind::kHio,
                                            MechanismKind::kMg};
  const CollectionSpec spec =
      CollectionSpec::FromSchema(TestSchema(), kinds, params);
  const CollectionSpec client_spec =
      CollectionSpec::Parse(spec.Serialize()).ValueOrDie();
  LdpClient client = LdpClient::Create(client_spec).ValueOrDie();
  CollectionServer server = CollectionServer::Create(spec).ValueOrDie();

  const uint64_t n = 20000;
  Rng rng(17);
  Rng data_rng(18);
  double truth = 0.0;
  std::vector<double> weights;
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(54)),
        static_cast<uint32_t>(data_rng.UniformInt(6))};
    const double weight = 1.0 + (u % 2);
    weights.push_back(weight);
    if (values[0] >= 10 && values[0] <= 40 && values[1] == 2) truth += weight;
    const std::string bytes = client.EncodeUser(values, rng).ValueOrDie();
    ASSERT_TRUE(server.Ingest(bytes, u).ok());
  }
  EXPECT_EQ(server.num_reports(), n);
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {{10, 40}, {2, 2}};
  const double est = server.EstimateBox(ranges, w).ValueOrDie();
  EXPECT_NEAR(est, truth, w.total() * 0.25);
}

TEST(ProtocolTest, ClientServerEndToEnd) {
  const CollectionSpec spec = TestSpec();
  // Ship the spec as text, as a deployment would.
  const CollectionSpec client_spec =
      CollectionSpec::Parse(spec.Serialize()).ValueOrDie();
  LdpClient client = LdpClient::Create(client_spec).ValueOrDie();
  CollectionServer server = CollectionServer::Create(spec).ValueOrDie();

  const uint64_t n = 20000;
  Rng rng(7);
  Rng data_rng(8);
  double truth = 0.0;
  std::vector<double> weights;
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(54)),
        static_cast<uint32_t>(data_rng.UniformInt(6))};
    const double weight = 1.0 + (u % 2);
    weights.push_back(weight);
    if (values[0] >= 10 && values[0] <= 40 && values[1] == 2) truth += weight;
    const std::string bytes = client.EncodeUser(values, rng).ValueOrDie();
    ASSERT_TRUE(server.Ingest(bytes, u).ok());
  }
  EXPECT_EQ(server.num_reports(), n);
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {{10, 40}, {2, 2}};
  const double est = server.EstimateBox(ranges, w).ValueOrDie();
  EXPECT_NEAR(est, truth, w.total() * 0.2);
}

// Every malformed-input path names the offending line and field.
TEST(CollectionSpecTest, ParseDiagnosticsNameLineAndField) {
  const std::string header = "ldpmda-collection-spec v1\n";
  struct Case {
    bool with_header;
    const char* input;
    const char* expect_substr;
  };
  const Case cases[] = {
      {false, "", "line 1"},
      {false, "not a spec\n", "line 1"},
      {false, "ldpmda-collection-spec v2\n", "line 1"},
      {true, "bogus\n", "spec line 2: line: expected key=value"},
      {true, "mechanism=alien\n", "spec line 2: mechanism"},
      {true, "epsilon=fast\n", "spec line 2: epsilon"},
      {true, "fanout=1\n", "spec line 2: fanout: must be >= 2"},
      {true, "fanout=x\n", "spec line 2: fanout"},
      {true, "fo=sha\n", "spec line 2: fo"},
      {true, "pool=-3\n", "spec line 2: pool: must be >= 0"},
      {true, "warp=9\n", "spec line 2: warp: unknown spec key"},
      {true, "dim=x\n", "spec line 2: dim: needs 'name kind domain'"},
      {true, "dim=x weird 5\n", "spec line 2: dim: kind must be"},
      {true, "dim=x ordinal 0\n", "spec line 2: dim: domain must be > 0"},
      {true, "dim=x ordinal many\n", "spec line 2: dim"},
      {true, "# only comments\n", "no sensitive dimensions"},
      {true, "epsilon=1\n\n# c\ndim=x ordinal 4\nfanout=1\n",
       "spec line 6: fanout"},
  };
  for (const Case& c : cases) {
    const std::string text =
        c.with_header ? header + c.input : std::string(c.input);
    const auto r = CollectionSpec::Parse(text);
    ASSERT_FALSE(r.ok()) << "input: " << c.input;
    EXPECT_NE(r.status().message().find(c.expect_substr), std::string::npos)
        << "input: '" << c.input << "' message: " << r.status().message();
  }
}

TEST(ProtocolTest, FrameRoundTripAndTypedRejections) {
  const std::string payload = "some report payload";
  const std::string frame = FrameReport(payload);
  EXPECT_EQ(frame.size(), kReportFrameHeaderBytes + payload.size());
  EXPECT_EQ(UnframeReport(frame).ValueOrDie(), payload);

  // Truncated before the header completes.
  EXPECT_FALSE(UnframeReport(std::string_view(frame).substr(0, 10)).ok());
  // Wrong magic.
  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_FALSE(UnframeReport(bad_magic).ok());
  // Unsupported version.
  std::string bad_version = frame;
  bad_version[4] = 2;
  EXPECT_FALSE(UnframeReport(bad_version).ok());
  // Length prefix disagrees with the carried payload.
  std::string short_payload = frame;
  short_payload.pop_back();
  EXPECT_FALSE(UnframeReport(short_payload).ok());
  // Payload bit flip breaks the checksum.
  std::string flipped = frame;
  flipped[kReportFrameHeaderBytes + 3] ^= 0x20;
  const auto r = UnframeReport(flipped);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

// Regression: a second report from the same user id must be discarded, not
// double-counted (retry echoes would otherwise bias every estimate).
TEST(ProtocolTest, IngestDeduplicatesUsers) {
  const CollectionSpec spec = TestSpec();
  LdpClient client = LdpClient::Create(spec).ValueOrDie();
  CollectionServer server = CollectionServer::Create(spec).ValueOrDie();
  Rng rng(12);
  const std::vector<uint32_t> values = {20, 3};
  const std::string first = client.EncodeUser(values, rng).ValueOrDie();
  ASSERT_TRUE(server.Ingest(first, 0).ok());
  // The identical frame again (a retry echo)...
  const Status echo = server.Ingest(first, 0);
  EXPECT_FALSE(echo.ok());
  EXPECT_EQ(echo.code(), StatusCode::kAlreadyExists);
  // ...and a fresh encode under the same user id: still rejected.
  const std::string second = client.EncodeUser(values, rng).ValueOrDie();
  EXPECT_FALSE(server.Ingest(second, 0).ok());
  EXPECT_EQ(server.num_reports(), 1u);
  EXPECT_EQ(server.ingest_stats().accepted, 1u);
  EXPECT_EQ(server.ingest_stats().duplicate, 2u);
  // A different user is unaffected.
  EXPECT_TRUE(server.Ingest(client.EncodeUser(values, rng).ValueOrDie(), 1)
                  .ok());
  EXPECT_EQ(server.num_reports(), 2u);
}

TEST(ProtocolTest, IngestStatsClassifyOutcomes) {
  const Schema schema = TestSchema();
  MechanismParams params;
  params.epsilon = 2.0;
  const CollectionSpec hio_spec =
      CollectionSpec::FromSchema(schema, MechanismKind::kHio, params);
  const CollectionSpec hi_spec =
      CollectionSpec::FromSchema(schema, MechanismKind::kHi, params);
  CollectionServer server = CollectionServer::Create(hio_spec).ValueOrDie();
  Rng rng(13);
  // corrupt: not even a frame.
  EXPECT_FALSE(server.Ingest("junk", 0).ok());
  // rejected: valid frame and payload, wrong shape for the spec.
  LdpClient hi_client = LdpClient::Create(hi_spec).ValueOrDie();
  const std::vector<uint32_t> values = {5, 1};
  EXPECT_FALSE(
      server.Ingest(hi_client.EncodeUser(values, rng).ValueOrDie(), 1).ok());
  // accepted.
  LdpClient hio_client = LdpClient::Create(hio_spec).ValueOrDie();
  EXPECT_TRUE(
      server.Ingest(hio_client.EncodeUser(values, rng).ValueOrDie(), 2).ok());
  const IngestStats& stats = server.ingest_stats();
  EXPECT_EQ(stats.corrupt, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.duplicate, 0u);
  EXPECT_EQ(stats.quarantined(), 2u);
  EXPECT_EQ(stats.total(), 3u);
  EXPECT_TRUE(server.has_report(2));
  EXPECT_FALSE(server.has_report(1));
}

// A user whose first frame was quarantined may retry successfully: dedup
// tracks accepted reports, not attempts.
TEST(ProtocolTest, QuarantinedUserMayRetry) {
  const CollectionSpec spec = TestSpec();
  LdpClient client = LdpClient::Create(spec).ValueOrDie();
  CollectionServer server = CollectionServer::Create(spec).ValueOrDie();
  Rng rng(14);
  const std::vector<uint32_t> values = {20, 3};
  std::string frame = client.EncodeUser(values, rng).ValueOrDie();
  frame.back() ^= 0x01;  // corrupt in flight
  EXPECT_FALSE(server.Ingest(frame, 7).ok());
  EXPECT_EQ(server.ingest_stats().corrupt, 1u);
  EXPECT_TRUE(
      server.Ingest(client.EncodeUser(values, rng).ValueOrDie(), 7).ok());
  EXPECT_EQ(server.num_reports(), 1u);
}

TEST(ProtocolTest, EstimateBoxWithZeroAcceptedIsTypedError) {
  CollectionServer server = CollectionServer::Create(TestSpec()).ValueOrDie();
  const WeightVector w = WeightVector::Ones(10);
  const std::vector<Interval> ranges = {{0, 53}, {0, 5}};
  const auto est = server.EstimateBox(ranges, w);
  ASSERT_FALSE(est.ok());
  EXPECT_EQ(est.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProtocolTest, ClientValidatesValues) {
  LdpClient client = LdpClient::Create(TestSpec()).ValueOrDie();
  Rng rng(9);
  const std::vector<uint32_t> too_few = {1};
  EXPECT_FALSE(client.EncodeUser(too_few, rng).ok());
  const std::vector<uint32_t> out_of_domain = {54, 0};
  EXPECT_FALSE(client.EncodeUser(out_of_domain, rng).ok());
}

TEST(ProtocolTest, ServerRejectsCorruptBytes) {
  CollectionServer server = CollectionServer::Create(TestSpec()).ValueOrDie();
  EXPECT_FALSE(server.Ingest("junk", 0).ok());
  EXPECT_EQ(server.num_reports(), 0u);
}

TEST(ProtocolTest, ServerRejectsWrongShapeReport) {
  // A report from an HI client does not fit an HIO server.
  const Schema schema = TestSchema();
  MechanismParams params;
  params.epsilon = 2.0;
  const CollectionSpec hio_spec =
      CollectionSpec::FromSchema(schema, MechanismKind::kHio, params);
  const CollectionSpec hi_spec =
      CollectionSpec::FromSchema(schema, MechanismKind::kHi, params);
  LdpClient hi_client = LdpClient::Create(hi_spec).ValueOrDie();
  CollectionServer hio_server =
      CollectionServer::Create(hio_spec).ValueOrDie();
  Rng rng(10);
  const std::vector<uint32_t> values = {5, 1};
  const std::string bytes = hi_client.EncodeUser(values, rng).ValueOrDie();
  EXPECT_FALSE(hio_server.Ingest(bytes, 0).ok());
}

}  // namespace
}  // namespace ldp
