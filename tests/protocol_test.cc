#include "engine/protocol.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 54).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 6).ok());
  EXPECT_TRUE(schema.AddPublicDimension("os", 2).ok());  // not collected
  EXPECT_TRUE(schema.AddMeasure("purchase").ok());       // not collected
  return schema;
}

CollectionSpec TestSpec() {
  MechanismParams params;
  params.epsilon = 2.0;
  params.fanout = 5;
  return CollectionSpec::FromSchema(TestSchema(), MechanismKind::kHio, params);
}

TEST(CollectionSpecTest, FromSchemaKeepsOnlySensitiveDims) {
  const CollectionSpec spec = TestSpec();
  ASSERT_EQ(spec.sensitive_attributes.size(), 2u);
  EXPECT_EQ(spec.sensitive_attributes[0].name, "age");
  EXPECT_EQ(spec.sensitive_attributes[1].name, "state");
}

TEST(CollectionSpecTest, SerializeParseRoundTrip) {
  const CollectionSpec spec = TestSpec();
  const std::string text = spec.Serialize();
  const CollectionSpec back = CollectionSpec::Parse(text).ValueOrDie();
  EXPECT_EQ(back.mechanism, spec.mechanism);
  EXPECT_DOUBLE_EQ(back.params.epsilon, spec.params.epsilon);
  EXPECT_EQ(back.params.fanout, spec.params.fanout);
  EXPECT_EQ(back.params.fo_kind, spec.params.fo_kind);
  EXPECT_EQ(back.params.hash_pool_size, spec.params.hash_pool_size);
  ASSERT_EQ(back.sensitive_attributes.size(), 2u);
  EXPECT_EQ(back.sensitive_attributes[0].name, "age");
  EXPECT_EQ(back.sensitive_attributes[0].kind,
            AttributeKind::kSensitiveOrdinal);
  EXPECT_EQ(back.sensitive_attributes[0].domain_size, 54u);
  EXPECT_EQ(back.sensitive_attributes[1].kind,
            AttributeKind::kSensitiveCategorical);
}

TEST(CollectionSpecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(CollectionSpec::Parse("").ok());
  EXPECT_FALSE(CollectionSpec::Parse("not a spec\n").ok());
  const char* header = "ldpmda-collection-spec v1\n";
  EXPECT_FALSE(CollectionSpec::Parse(header).ok());  // no dims
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "bogus\n").ok());
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "mechanism=alien\n").ok());
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "dim=x weird 5\n").ok());
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "dim=x ordinal 0\n").ok());
  EXPECT_FALSE(
      CollectionSpec::Parse(std::string(header) + "fanout=1\ndim=x ordinal 4\n")
          .ok());
}

TEST(CollectionSpecTest, ParseIgnoresCommentsAndBlankLines) {
  const std::string text =
      "ldpmda-collection-spec v1\n"
      "# a comment\n"
      "\n"
      "mechanism=sc\n"
      "epsilon=1.5\n"
      "dim=a ordinal 16\n";
  const CollectionSpec spec = CollectionSpec::Parse(text).ValueOrDie();
  EXPECT_EQ(spec.mechanism, MechanismKind::kSc);
  EXPECT_DOUBLE_EQ(spec.params.epsilon, 1.5);
}

TEST(ProtocolTest, ClientServerEndToEnd) {
  const CollectionSpec spec = TestSpec();
  // Ship the spec as text, as a deployment would.
  const CollectionSpec client_spec =
      CollectionSpec::Parse(spec.Serialize()).ValueOrDie();
  LdpClient client = LdpClient::Create(client_spec).ValueOrDie();
  CollectionServer server = CollectionServer::Create(spec).ValueOrDie();

  const uint64_t n = 20000;
  Rng rng(7);
  Rng data_rng(8);
  double truth = 0.0;
  std::vector<double> weights;
  for (uint64_t u = 0; u < n; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(54)),
        static_cast<uint32_t>(data_rng.UniformInt(6))};
    const double weight = 1.0 + (u % 2);
    weights.push_back(weight);
    if (values[0] >= 10 && values[0] <= 40 && values[1] == 2) truth += weight;
    const std::string bytes = client.EncodeUser(values, rng).ValueOrDie();
    ASSERT_TRUE(server.Ingest(bytes, u).ok());
  }
  EXPECT_EQ(server.num_reports(), n);
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {{10, 40}, {2, 2}};
  const double est = server.EstimateBox(ranges, w).ValueOrDie();
  EXPECT_NEAR(est, truth, w.total() * 0.2);
}

TEST(ProtocolTest, ClientValidatesValues) {
  LdpClient client = LdpClient::Create(TestSpec()).ValueOrDie();
  Rng rng(9);
  const std::vector<uint32_t> too_few = {1};
  EXPECT_FALSE(client.EncodeUser(too_few, rng).ok());
  const std::vector<uint32_t> out_of_domain = {54, 0};
  EXPECT_FALSE(client.EncodeUser(out_of_domain, rng).ok());
}

TEST(ProtocolTest, ServerRejectsCorruptBytes) {
  CollectionServer server = CollectionServer::Create(TestSpec()).ValueOrDie();
  EXPECT_FALSE(server.Ingest("junk", 0).ok());
  EXPECT_EQ(server.num_reports(), 0u);
}

TEST(ProtocolTest, ServerRejectsWrongShapeReport) {
  // A report from an HI client does not fit an HIO server.
  const Schema schema = TestSchema();
  MechanismParams params;
  params.epsilon = 2.0;
  const CollectionSpec hio_spec =
      CollectionSpec::FromSchema(schema, MechanismKind::kHio, params);
  const CollectionSpec hi_spec =
      CollectionSpec::FromSchema(schema, MechanismKind::kHi, params);
  LdpClient hi_client = LdpClient::Create(hi_spec).ValueOrDie();
  CollectionServer hio_server =
      CollectionServer::Create(hio_spec).ValueOrDie();
  Rng rng(10);
  const std::vector<uint32_t> values = {5, 1};
  const std::string bytes = hi_client.EncodeUser(values, rng).ValueOrDie();
  EXPECT_FALSE(hio_server.Ingest(bytes, 0).ok());
}

}  // namespace
}  // namespace ldp
