#include "engine/query_gen.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "query/exact.h"
#include "query/rewriter.h"

namespace ldp {
namespace {

Table TestTable(uint64_t n = 5000) {
  return MakeIpums4D(n, 54, 11);
}

// Volume of a conjunctive range query: product of per-dim coverage over the
// dims present in the predicate (Section 5.4).
double VolumeOf(const Schema& schema, const Query& q) {
  const auto terms = RewritePredicate(schema, q.where.get()).ValueOrDie();
  EXPECT_EQ(terms.size(), 1u);
  double vol = 1.0;
  for (const auto& c : terms[0].box.constraints) {
    vol *= static_cast<double>(c.range.length()) /
           static_cast<double>(schema.attribute(c.attr).domain_size);
  }
  return vol;
}

TEST(QueryGenTest, VolumeQueryHitsTarget) {
  const Table table = TestTable();
  QueryGenerator gen(table, 1);
  const std::vector<int> dims = {0, 1};  // two ordinal dims
  for (const double vol : {0.01, 0.1, 0.25, 0.8}) {
    for (int i = 0; i < 10; ++i) {
      const Query q = gen.RandomVolumeQuery(Aggregate::Count(), dims, vol);
      EXPECT_NEAR(VolumeOf(table.schema(), q), vol, vol * 0.5 + 0.02);
      ASSERT_TRUE(ValidateQuery(table.schema(), q).ok());
    }
  }
}

TEST(QueryGenTest, VolumeQueryRangesWithinDomain) {
  const Table table = TestTable();
  QueryGenerator gen(table, 2);
  for (int i = 0; i < 50; ++i) {
    const Query q =
        gen.RandomVolumeQuery(Aggregate::Sum(4), {0}, 0.3);
    const auto terms =
        RewritePredicate(table.schema(), q.where.get()).ValueOrDie();
    for (const auto& c : terms[0].box.constraints) {
      EXPECT_LE(c.range.hi,
                table.schema().attribute(c.attr).domain_size - 1);
    }
  }
}

TEST(QueryGenTest, VolumeOneCoversWholeDomain) {
  const Table table = TestTable();
  QueryGenerator gen(table, 3);
  const Query q = gen.RandomVolumeQuery(Aggregate::Count(), {0, 1}, 1.0);
  EXPECT_NEAR(VolumeOf(table.schema(), q), 1.0, 1e-9);
}

TEST(QueryGenTest, SelectivityQueryHitsTarget) {
  const Table table = TestTable();
  QueryGenerator gen(table, 4);
  for (const double target : {0.05, 0.1, 0.3}) {
    double achieved = 0.0;
    const auto q = gen.RandomSelectivityQuery(
        Aggregate::Count(), /*ordinal_dims=*/{0, 1},
        /*categorical_dims=*/{}, target, /*tolerance=*/0.3, &achieved);
    ASSERT_TRUE(q.ok()) << "target " << target;
    EXPECT_NEAR(achieved, target, target * 0.35);
    EXPECT_NEAR(ExactSelectivity(table, q.value().where.get()), achieved,
                1e-9);
  }
}

TEST(QueryGenTest, SelectivityQueryWithCategoricals) {
  const Table table = TestTable();
  QueryGenerator gen(table, 5);
  double achieved = 0.0;
  const auto q = gen.RandomSelectivityQuery(
      Aggregate::Avg(4), /*ordinal_dims=*/{0},
      /*categorical_dims=*/{2, 3}, 0.05, 0.4, &achieved);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(achieved, 0.0);
  // The predicate must constrain all three dims.
  std::vector<int> attrs;
  q.value().where->CollectAttributes(&attrs);
  EXPECT_EQ(attrs.size(), 3u);
}

TEST(QueryGenTest, PureCategoricalQueryReturnsClosestDraw) {
  const Table table = TestTable();
  QueryGenerator gen(table, 6);
  double achieved = 0.0;
  const auto q = gen.RandomSelectivityQuery(Aggregate::Count(), {}, {3},
                                            0.5, 0.5, &achieved);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(achieved, 0.0);
}

TEST(QueryGenTest, RejectsBadTarget) {
  const Table table = TestTable(100);
  QueryGenerator gen(table, 7);
  EXPECT_FALSE(
      gen.RandomSelectivityQuery(Aggregate::Count(), {0}, {}, 0.0, 0.1).ok());
  EXPECT_FALSE(
      gen.RandomSelectivityQuery(Aggregate::Count(), {0}, {}, 1.5, 0.1).ok());
}

TEST(QueryGenTest, DeterministicGivenSeed) {
  const Table table = TestTable(1000);
  QueryGenerator g1(table, 42);
  QueryGenerator g2(table, 42);
  for (int i = 0; i < 5; ++i) {
    const Query q1 = g1.RandomVolumeQuery(Aggregate::Count(), {0, 1}, 0.25);
    const Query q2 = g2.RandomVolumeQuery(Aggregate::Count(), {0, 1}, 0.25);
    EXPECT_EQ(q1.ToString(table.schema()), q2.ToString(table.schema()));
  }
}

}  // namespace
}  // namespace ldp
