#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformInt(n), n);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.UniformInt(10)];
  for (int i = 0; i < 10; ++i) {
    // Each bucket expects 1000; allow wide slack.
    EXPECT_GT(seen[i], 800) << "bucket " << i;
    EXPECT_LT(seen[i], 1200) << "bucket " << i;
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.UniformRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(29);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa(), fb());
  // Fork advances the parent: parent streams still agree with each other.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMixTest, KnownSequenceIsStable) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(SplitMix64Next(s1), SplitMix64Next(s1));
}

TEST(ZipfTest, RanksAreMonotonicallyLessFrequent) {
  Rng rng(37);
  ZipfDistribution zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
  // Ratio of rank 0 to rank 1 should be near 2^1.2.
  const double ratio =
      static_cast<double>(counts[0]) / std::max(counts[1], 1);
  EXPECT_NEAR(ratio, std::pow(2.0, 1.2), 0.5);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  Rng rng(41);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfTest, SingleValueDomain) {
  Rng rng(43);
  ZipfDistribution zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ShuffleTest, IsAPermutation) {
  Rng rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // Overwhelmingly likely to have moved something.
  std::vector<int> identity(100);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

}  // namespace
}  // namespace ldp
