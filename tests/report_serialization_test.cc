#include <gtest/gtest.h>

#include "engine/protocol.h"
#include "mech/factory.h"

namespace ldp {
namespace {

LdpReport SampleReport() {
  LdpReport report;
  report.entries.push_back({3, {7, 2, {}}});
  report.entries.push_back({0, {0xffffffff, 0, {}}});
  FoReport with_bits;
  with_bits.seed = 1;
  with_bits.value = 9;
  with_bits.bits = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  report.entries.push_back({42, with_bits});
  return report;
}

TEST(ReportSerializationTest, RoundTrip) {
  const LdpReport report = SampleReport();
  const std::string bytes = report.Serialize();
  const LdpReport back = LdpReport::Deserialize(bytes).ValueOrDie();
  EXPECT_TRUE(back == report);
}

TEST(ReportSerializationTest, EmptyReport) {
  const LdpReport empty;
  const std::string bytes = empty.Serialize();
  EXPECT_EQ(bytes.size(), 4u);
  const LdpReport back = LdpReport::Deserialize(bytes).ValueOrDie();
  EXPECT_TRUE(back == empty);
}

TEST(ReportSerializationTest, SizeMatchesFormat) {
  const LdpReport report = SampleReport();
  // 4 header + 3 entries * 16 + 2 bit words * 8.
  EXPECT_EQ(report.Serialize().size(), 4u + 3 * 16 + 2 * 8);
}

TEST(ReportSerializationTest, RejectsTruncation) {
  const std::string bytes = SampleReport().Serialize();
  for (const size_t cut : {0ul, 3ul, 5ul, bytes.size() - 1}) {
    const auto r = LdpReport::Deserialize(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

TEST(ReportSerializationTest, RejectsTrailingGarbage) {
  std::string bytes = SampleReport().Serialize();
  bytes += 'x';
  EXPECT_FALSE(LdpReport::Deserialize(bytes).ok());
}

TEST(ReportSerializationTest, RejectsImplausibleCounts) {
  std::string bytes(4, '\xff');  // entry count ~4 billion
  EXPECT_FALSE(LdpReport::Deserialize(bytes).ok());
}

// Round-trip fuzz loop (seeded for reproducibility): random valid reports
// survive serialize → corrupt-one-byte → parse with a typed rejection,
// never a crash. The framed format's checksum guarantees any single-byte
// flip anywhere in the frame is detected; truncations at every depth are
// rejected by the length prefix or the header check.
TEST(ReportSerializationTest, FramedCorruptionFuzzRejectsEveryFlip) {
  Rng rng(20240806);
  for (int iter = 0; iter < 300; ++iter) {
    LdpReport report;
    const int entries = static_cast<int>(rng.UniformInt(5));
    for (int e = 0; e < entries; ++e) {
      LdpReport::Entry entry;
      entry.group = static_cast<uint32_t>(rng());
      entry.fo.seed = static_cast<uint32_t>(rng());
      entry.fo.value = static_cast<uint32_t>(rng());
      const int words = static_cast<int>(rng.UniformInt(4));
      for (int w = 0; w < words; ++w) entry.fo.bits.push_back(rng());
      report.entries.push_back(std::move(entry));
    }
    const std::string payload = report.Serialize();
    // The unframed payload itself must always round-trip.
    ASSERT_TRUE(LdpReport::Deserialize(payload).ValueOrDie() == report);

    const std::string frame = FrameReport(payload);
    ASSERT_TRUE(LdpReport::Deserialize(UnframeReport(frame).ValueOrDie())
                    .ValueOrDie() == report);
    // One random byte flipped anywhere in the frame: typed rejection.
    std::string flipped = frame;
    const size_t pos = rng.UniformInt(flipped.size());
    flipped[pos] ^= static_cast<char>(1 + rng.UniformInt(255));
    const auto r = UnframeReport(flipped);
    ASSERT_FALSE(r.ok()) << "iter " << iter << " flip at " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    // A random truncation: also a typed rejection.
    const auto t = UnframeReport(
        std::string_view(frame).substr(0, rng.UniformInt(frame.size())));
    ASSERT_FALSE(t.ok()) << "iter " << iter;
    EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  }
}

// End-to-end: a wire round trip between encode and ingest leaves every
// mechanism's estimates unchanged.
TEST(ReportSerializationTest, WireRoundTripPreservesEstimates) {
  Schema schema;
  ASSERT_TRUE(schema.AddOrdinal("x", 16).ok());
  ASSERT_TRUE(schema.AddOrdinal("y", 16).ok());
  ASSERT_TRUE(schema.AddMeasure("w").ok());
  MechanismParams params;
  params.epsilon = 2.0;
  for (const MechanismKind kind :
       {MechanismKind::kHi, MechanismKind::kHio, MechanismKind::kSc,
        MechanismKind::kMg, MechanismKind::kQuadTree}) {
    auto direct = CreateMechanism(kind, schema, params).ValueOrDie();
    auto via_wire = CreateMechanism(kind, schema, params).ValueOrDie();
    Rng rng(11);
    for (uint64_t u = 0; u < 300; ++u) {
      const std::vector<uint32_t> values = {
          static_cast<uint32_t>(u % 16), static_cast<uint32_t>((u / 3) % 16)};
      const LdpReport report = direct->EncodeUser(values, rng);
      ASSERT_TRUE(direct->AddReport(report, u).ok());
      const LdpReport decoded =
          LdpReport::Deserialize(report.Serialize()).ValueOrDie();
      ASSERT_TRUE(via_wire->AddReport(decoded, u).ok());
    }
    const WeightVector w = WeightVector::Ones(300);
    const std::vector<Interval> ranges = {{2, 11}, {4, 13}};
    EXPECT_DOUBLE_EQ(direct->EstimateBox(ranges, w).ValueOrDie(),
                     via_wire->EstimateBox(ranges, w).ValueOrDie())
        << MechanismKindName(kind);
  }
}

}  // namespace
}  // namespace ldp
