#include "query/rewriter.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generator.h"
#include "query/exact.h"
#include "query/parser.h"

namespace ldp {
namespace {

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("a", 16).ok());
  EXPECT_TRUE(schema.AddOrdinal("b", 16).ok());
  EXPECT_TRUE(schema.AddCategorical("c", 4).ok());
  EXPECT_TRUE(schema.AddMeasure("m").ok());
  return schema;
}

Table TestTable(uint64_t n = 2000) {
  TableSpec spec;
  spec.dims.push_back(
      {"a", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kUniform, 1.0});
  spec.dims.push_back(
      {"b", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kZipf, 1.1});
  spec.dims.push_back({"c", AttributeKind::kSensitiveCategorical, 4,
                       ColumnDist::kUniform, 1.0});
  spec.measures.push_back({"m", 0.0, 5.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, 77).ValueOrDie();
}

// Exact count of rows matching an inclusion–exclusion rewriting: the signed
// sum of per-box matches must equal the predicate's match count for any
// predicate. This is the central correctness property of Section 7.
double IeCount(const Table& table, const std::vector<IeTerm>& terms) {
  double total = 0.0;
  for (const auto& term : terms) {
    uint64_t matches = 0;
    for (uint64_t row = 0; row < table.num_rows(); ++row) {
      matches += term.box.EvalRow(table, row);
    }
    total += term.coefficient * static_cast<double>(matches);
  }
  return total;
}

TEST(RewriterTest, NullPredicateIsOneUnconstrainedBox) {
  const auto terms = RewritePredicate(TestSchema(), nullptr).ValueOrDie();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_DOUBLE_EQ(terms[0].coefficient, 1.0);
  EXPECT_TRUE(terms[0].box.constraints.empty());
}

TEST(RewriterTest, SingleConstraint) {
  const PredicatePtr p = Predicate::MakeConstraint(0, {3, 9});
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_DOUBLE_EQ(terms[0].coefficient, 1.0);
  ASSERT_EQ(terms[0].box.constraints.size(), 1u);
  EXPECT_EQ(terms[0].box.constraints[0].range, (Interval{3, 9}));
}

TEST(RewriterTest, ConjunctionIntersectsSameAttribute) {
  const PredicatePtr p = Predicate::MakeAnd(
      {Predicate::MakeConstraint(0, {3, 9}),
       Predicate::MakeConstraint(0, {5, 12})});
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0].box.constraints[0].range, (Interval{5, 9}));
}

TEST(RewriterTest, ContradictionYieldsNoTerms) {
  const PredicatePtr p = Predicate::MakeAnd(
      {Predicate::MakeConstraint(0, {1, 3}),
       Predicate::MakeConstraint(0, {10, 12})});
  EXPECT_TRUE(RewritePredicate(TestSchema(), p.get()).ValueOrDie().empty());
}

TEST(RewriterTest, DisjointOrHasNoCrossTerm) {
  const PredicatePtr p = Predicate::MakeOr(
      {Predicate::MakeConstraint(0, {0, 3}),
       Predicate::MakeConstraint(0, {10, 15})});
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 2u);  // intersection is empty and pruned
  EXPECT_DOUBLE_EQ(terms[0].coefficient, 1.0);
  EXPECT_DOUBLE_EQ(terms[1].coefficient, 1.0);
}

TEST(RewriterTest, OverlappingOrProducesInclusionExclusion) {
  // The paper's Section 7 example: A OR B = A + B - (A AND B).
  const PredicatePtr p = Predicate::MakeOr(
      {Predicate::MakeConstraint(0, {0, 9}),
       Predicate::MakeConstraint(1, {0, 9})});
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 3u);
  double positive = 0;
  double negative = 0;
  for (const auto& t : terms) {
    (t.coefficient > 0 ? positive : negative) += t.coefficient;
  }
  EXPECT_DOUBLE_EQ(positive, 2.0);
  EXPECT_DOUBLE_EQ(negative, -1.0);
}

TEST(RewriterTest, DnfCapIsEnforced) {
  std::vector<PredicatePtr> many;
  for (uint64_t i = 0; i < 20; ++i) {
    many.push_back(Predicate::MakeConstraint(0, {i, i}));
  }
  const PredicatePtr p = Predicate::MakeOr(many);
  const auto r = RewritePredicate(TestSchema(), p.get(), /*max_clauses=*/12);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ConjunctiveBoxTest, Accessors) {
  ConjunctiveBox box;
  box.constraints.push_back({0, {3, 9}});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.RangeOf(0, 16), (Interval{3, 9}));
  EXPECT_EQ(box.RangeOf(1, 16), (Interval{0, 15}));  // unconstrained
  box.constraints.push_back({1, {5, 2}});
  EXPECT_TRUE(box.IsEmpty());
}

TEST(RewriterTest, NotOfRangeComplements) {
  // NOT (a in [3, 9]) -> [0,2] + [10,15] on a 16-value domain.
  const PredicatePtr p =
      Predicate::MakeNot(Predicate::MakeConstraint(0, {3, 9}));
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 2u);
  for (const auto& t : terms) EXPECT_DOUBLE_EQ(t.coefficient, 1.0);
}

TEST(RewriterTest, NotOfFullDomainIsUnsatisfiable) {
  const PredicatePtr p =
      Predicate::MakeNot(Predicate::MakeConstraint(0, {0, 15}));
  EXPECT_TRUE(RewritePredicate(TestSchema(), p.get()).ValueOrDie().empty());
}

TEST(RewriterTest, NotOfEmptyIsFullDomain) {
  const PredicatePtr p =
      Predicate::MakeNot(Predicate::MakeConstraint(0, {1, 0}));
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0].box.constraints[0].range, (Interval{0, 15}));
}

TEST(RewriterTest, DeMorganThroughConjunction) {
  // NOT (a <= 7 AND b <= 7) == (a >= 8) OR (b >= 8): 3 I-E terms.
  const PredicatePtr p = Predicate::MakeNot(
      Predicate::MakeAnd({Predicate::MakeConstraint(0, {0, 7}),
                          Predicate::MakeConstraint(1, {0, 7})}));
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  EXPECT_EQ(terms.size(), 3u);
}

// Property test: for random AND-OR predicates, the signed box sum equals the
// exact predicate count — inclusion–exclusion is exact.
class RewriterPropertyTest : public testing::TestWithParam<int> {};

PredicatePtr RandomPredicate(Rng& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.4)) {
    const int attr = static_cast<int>(rng.UniformInt(3));
    const uint64_t m = attr == 2 ? 4 : 16;
    if (attr == 2) {
      return Predicate::MakeEquals(attr, rng.UniformInt(m));
    }
    const uint64_t lo = rng.UniformInt(m);
    const uint64_t hi = rng.UniformRange(lo, m - 1);
    return Predicate::MakeConstraint(attr, {lo, hi});
  }
  if (rng.Bernoulli(0.2)) {
    return Predicate::MakeNot(RandomPredicate(rng, depth - 1));
  }
  std::vector<PredicatePtr> children;
  const int arity = 2 + static_cast<int>(rng.UniformInt(2));
  for (int i = 0; i < arity; ++i) {
    children.push_back(RandomPredicate(rng, depth - 1));
  }
  return rng.Bernoulli(0.5) ? Predicate::MakeAnd(std::move(children))
                            : Predicate::MakeOr(std::move(children));
}

TEST_P(RewriterPropertyTest, InclusionExclusionMatchesExactCount) {
  const Table table = TestTable();
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const PredicatePtr p = RandomPredicate(rng, 2);
    const auto terms = RewritePredicate(table.schema(), p.get(), 16);
    if (!terms.ok()) continue;  // DNF blew the cap; acceptable
    const double ie = IeCount(table, terms.value());
    const double exact =
        static_cast<double>(ExactMatchCount(table, p.get()));
    EXPECT_NEAR(ie, exact, 1e-6) << p->ToString(table.schema());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterPropertyTest, testing::Range(0, 5));

TEST(RewriterTest, DuplicateOrClausesMergeToSingleTerm) {
  // A OR A: inclusion–exclusion yields A + A - (A AND A); the rewriter's
  // canonical-box merging must collapse this to a single +1 term, not leave
  // three terms whose estimation noise would triple.
  const PredicatePtr p = Predicate::MakeOr(
      {Predicate::MakeConstraint(0, {0, 5}),
       Predicate::MakeConstraint(0, {0, 5})});
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_DOUBLE_EQ(terms[0].coefficient, 1.0);
  EXPECT_EQ(terms[0].box.RangeOf(0, 16), (Interval{0, 5}));
}

TEST(RewriterTest, TripleDuplicateOrStillMergesExactly) {
  // A OR A OR A: the signed subset sum is 3 - 3 + 1 = 1; merging must get
  // the arithmetic right, not just deduplicate pairs.
  const PredicatePtr p = Predicate::MakeOr(
      {Predicate::MakeConstraint(0, {0, 5}),
       Predicate::MakeConstraint(0, {0, 5}),
       Predicate::MakeConstraint(0, {0, 5})});
  const auto terms = RewritePredicate(TestSchema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_DOUBLE_EQ(terms[0].coefficient, 1.0);
  const Table table = TestTable();
  EXPECT_NEAR(IeCount(table, terms),
              static_cast<double>(ExactMatchCount(table, p.get())), 1e-9);
}

TEST(RewriterTest, EmptyResultPredicateYieldsEmptySum) {
  // Contradictions must rewrite to the empty term list (estimate 0), both
  // for ordinal ranges and categorical equality, and even when buried under
  // an OR whose other branch is also unsatisfiable.
  const Schema schema = TestSchema();
  const PredicatePtr ordinal = Predicate::MakeAnd(
      {Predicate::MakeEquals(0, 3), Predicate::MakeEquals(0, 7)});
  EXPECT_TRUE(RewritePredicate(schema, ordinal.get()).ValueOrDie().empty());

  const PredicatePtr categorical = Predicate::MakeAnd(
      {Predicate::MakeEquals(2, 1), Predicate::MakeEquals(2, 2)});
  EXPECT_TRUE(
      RewritePredicate(schema, categorical.get()).ValueOrDie().empty());

  const PredicatePtr disjunction = Predicate::MakeOr(
      {Predicate::MakeAnd(
           {Predicate::MakeEquals(0, 3), Predicate::MakeEquals(0, 7)}),
       Predicate::MakeConstraint(1, {9, 2})});
  EXPECT_TRUE(
      RewritePredicate(schema, disjunction.get()).ValueOrDie().empty());
}

TEST(RewriterTest, FullDomainRangeKeepsRootBoxSemantics) {
  // A constraint spanning the whole domain is satisfied by every row: the
  // rewrite must behave exactly like the unconstrained root box (it may keep
  // the explicit constraint, but RangeOf and the IE sum must match).
  const Table table = TestTable();
  const PredicatePtr p = Predicate::MakeConstraint(0, {0, 15});
  const auto terms = RewritePredicate(table.schema(), p.get()).ValueOrDie();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_DOUBLE_EQ(terms[0].coefficient, 1.0);
  EXPECT_EQ(terms[0].box.RangeOf(0, 16), (Interval{0, 15}));
  EXPECT_NEAR(IeCount(table, terms), static_cast<double>(table.num_rows()),
              1e-9);
}

TEST(RewriterTest, FullDomainClauseInDisjunctionCoversEverything) {
  // (a in full domain) OR (b <= 7) is a tautology; whatever term structure
  // the rewrite keeps, its signed sum must count every row exactly once.
  const Table table = TestTable();
  const PredicatePtr p = Predicate::MakeOr(
      {Predicate::MakeConstraint(0, {0, 15}),
       Predicate::MakeConstraint(1, {0, 7})});
  const auto terms = RewritePredicate(table.schema(), p.get()).ValueOrDie();
  EXPECT_NEAR(IeCount(table, terms), static_cast<double>(table.num_rows()),
              1e-9);
}

TEST(RewriterTest, ParsedOrQueryFromPaperSection7) {
  // "Age IN [30,40] OR Salary IN [50,150]" rewrites into three boxes with
  // signs +1, +1, -1 that reproduce the exact count.
  Schema schema;
  ASSERT_TRUE(schema.AddOrdinal("age", 64).ok());
  ASSERT_TRUE(schema.AddOrdinal("salary", 200).ok());
  ASSERT_TRUE(schema.AddMeasure("purchase").ok());
  const Query q =
      ParseQuery(schema,
                 "SELECT SUM(purchase) FROM T WHERE age IN [30, 40] OR "
                 "salary IN [50, 150]")
          .ValueOrDie();
  const auto terms = RewritePredicate(schema, q.where.get()).ValueOrDie();
  EXPECT_EQ(terms.size(), 3u);
}

}  // namespace
}  // namespace ldp
