#include "data/schema.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

Schema MakeTestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 64).ok());
  EXPECT_TRUE(schema.AddOrdinal("salary", 128).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 50).ok());
  EXPECT_TRUE(schema.AddPublicDimension("os", 3).ok());
  EXPECT_TRUE(schema.AddMeasure("purchase").ok());
  EXPECT_TRUE(schema.AddMeasure("active_time").ok());
  return schema;
}

TEST(SchemaTest, AttributeAccessors) {
  const Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.num_attributes(), 6);
  EXPECT_EQ(schema.attribute(0).name, "age");
  EXPECT_EQ(schema.attribute(0).kind, AttributeKind::kSensitiveOrdinal);
  EXPECT_EQ(schema.attribute(0).domain_size, 64u);
  EXPECT_EQ(schema.attribute(2).kind, AttributeKind::kSensitiveCategorical);
  EXPECT_EQ(schema.attribute(3).kind, AttributeKind::kPublicDimension);
  EXPECT_EQ(schema.attribute(4).kind, AttributeKind::kMeasure);
}

TEST(SchemaTest, KindPredicates) {
  EXPECT_TRUE(IsDimension(AttributeKind::kSensitiveOrdinal));
  EXPECT_TRUE(IsDimension(AttributeKind::kPublicDimension));
  EXPECT_FALSE(IsDimension(AttributeKind::kMeasure));
  EXPECT_TRUE(IsSensitive(AttributeKind::kSensitiveCategorical));
  EXPECT_FALSE(IsSensitive(AttributeKind::kPublicDimension));
  EXPECT_FALSE(IsSensitive(AttributeKind::kMeasure));
}

TEST(SchemaTest, IndexLists) {
  const Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.sensitive_dims(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(schema.public_dims(), (std::vector<int>{3}));
  EXPECT_EQ(schema.measures(), (std::vector<int>{4, 5}));
}

TEST(SchemaTest, FindAttribute) {
  const Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.FindAttribute("salary").ValueOrDie(), 1);
  EXPECT_EQ(schema.FindAttribute("purchase").ValueOrDie(), 4);
  EXPECT_FALSE(schema.FindAttribute("missing").ok());
  EXPECT_EQ(schema.FindAttribute("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, SensitiveDimPosition) {
  const Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.SensitiveDimPosition(0), 0);
  EXPECT_EQ(schema.SensitiveDimPosition(2), 2);
  EXPECT_EQ(schema.SensitiveDimPosition(3), -1);  // public, not sensitive
  EXPECT_EQ(schema.SensitiveDimPosition(4), -1);  // measure
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Schema schema;
  ASSERT_TRUE(schema.AddOrdinal("x", 4).ok());
  const Status st = schema.AddMeasure("x");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsEmptyNameAndZeroDomain) {
  Schema schema;
  EXPECT_FALSE(schema.AddOrdinal("", 4).ok());
  EXPECT_FALSE(schema.AddOrdinal("y", 0).ok());
  EXPECT_FALSE(schema.AddCategorical("z", 0).ok());
}

TEST(SchemaTest, ToStringMentionsEveryAttribute) {
  const Schema schema = MakeTestSchema();
  const std::string s = schema.ToString();
  for (const char* name :
       {"age", "salary", "state", "os", "purchase", "active_time"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
  EXPECT_NE(s.find("ORDINAL(64)"), std::string::npos);
  EXPECT_NE(s.find("CATEGORICAL(50)"), std::string::npos);
}

}  // namespace
}  // namespace ldp
