// SIMD kernel layer (src/fo/simd/): every vector level this binary + host
// supports must be bit-identical to the scalar reference kernels —
//  * at the kernel-table level, fuzzing each FoKernels entry over random
//    inputs, tile remainders around the lane widths (1, lane-1, lane,
//    lane+1), and misaligned value/output spans,
//  * at the accumulator level (EstimateManyWeighted under SetSimdLevel),
//  * at the engine level across thread counts and cache states,
// plus the level-name surface (SimdLevelFromString/SimdLevelName) and the
// LDP_CHECK-fatal path for a forced level the host cannot run.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generator.h"
#include "engine/engine.h"
#include "fo/grr.h"
#include "fo/hadamard.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "fo/simd/simd.h"

namespace ldp {
namespace {

void ExpectBitEqual(double a, double b, const std::string& what) {
  uint64_t ba = 0;
  uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

/// Every level this binary + host can run. Always contains kScalar; the
/// vector entries appear exactly when their kernels were compiled in AND the
/// host supports them, so the suite degenerates gracefully on scalar-only
/// builds (check-all-simd-off) without weakening where vectors exist.
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (const SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

/// A level that must be rejected on this binary + host. AVX2 and NEON are
/// mutually exclusive (x86-64 vs aarch64), so at least one always exists.
SimdLevel UnsupportedLevel() {
  for (const SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (!SimdLevelSupported(level)) return level;
  }
  ADD_FAILURE() << "no unsupported level on this host?";
  return SimdLevel::kScalar;
}

/// Value counts covering the remainder cases around both lane widths
/// (NEON: 2, AVX2: 4): 1, lane-1, lane, lane+1, and a longer mixed run.
const size_t kValueCounts[] = {1, 2, 3, 4, 5, 8, 37};
/// Element offsets into over-allocated buffers: offset 0 may be 32-byte
/// aligned, the others force 8/16/24-byte misalignment of values AND theta.
const size_t kOffsets[] = {0, 1, 2, 3};

struct FuzzCase {
  uint32_t g = 8;
  uint32_t pool = 64;
  size_t words_per_report = 4;
  std::vector<uint32_t> seeds, ys, grr_reports;
  std::vector<uint64_t> users, oue_bits, hr_indices, values;
  std::vector<double> weights, hist, hr_sums;
};

FuzzCase MakeCase(Rng& rng, size_t num_reports, size_t max_values) {
  FuzzCase c;
  c.g = 2 + static_cast<uint32_t>(rng.UniformInt(15));
  c.pool = 1 + static_cast<uint32_t>(rng.UniformInt(97));
  c.words_per_report = 1 + rng.UniformInt(4);
  const uint64_t domain = c.words_per_report * 64;
  c.seeds.resize(num_reports);
  c.ys.resize(num_reports);
  c.grr_reports.resize(num_reports);
  c.users.resize(num_reports);
  c.weights.resize(num_reports);
  c.oue_bits.resize(num_reports * c.words_per_report);
  for (size_t i = 0; i < num_reports; ++i) {
    c.seeds[i] = static_cast<uint32_t>(rng());
    c.ys[i] = static_cast<uint32_t>(rng.UniformInt(c.g));
    c.grr_reports[i] = static_cast<uint32_t>(rng.UniformInt(domain));
    c.users[i] = i;
    // Mixed signs and exact zeros: the weights every batched fan-out feeds.
    c.weights[i] = 0.25 * static_cast<double>(rng.UniformInt(9)) - 1.0;
  }
  Shuffle(c.users, rng);  // exercise the weight gathers out of row order
  c.hist.resize(static_cast<size_t>(c.pool) * c.g);
  for (double& h : c.hist) h = rng.UniformDouble() - 0.5;
  const size_t entries = 16 + rng.UniformInt(100);
  c.hr_indices.resize(entries);
  c.hr_sums.resize(entries);
  for (size_t e = 0; e < entries; ++e) {
    c.hr_indices[e] = rng();
    c.hr_sums[e] = rng.UniformDouble() - 0.5;
  }
  // Over-allocate so callers can offset the span start; include values with
  // high 32 bits set (GRR must truncate them exactly like the scalar loop).
  c.values.resize(max_values + 8);
  for (size_t v = 0; v < c.values.size(); ++v) {
    c.values[v] = rng.UniformInt(domain);
    if (rng.Bernoulli(0.25)) c.values[v] |= rng() << 32;
  }
  return c;
}

/// Runs one kernel entry of `level` against the scalar table on the same
/// inputs for every value-count / offset combination and compares bitwise.
void FuzzKernelsAgainstScalar(SimdLevel level, uint64_t seed) {
  const FoKernels& scalar = KernelsForLevel(SimdLevel::kScalar);
  const FoKernels& vec = KernelsForLevel(level);
  Rng rng(seed);
  const size_t kMaxValues = 37;
  const FuzzCase c = MakeCase(rng, /*num_reports=*/300, kMaxValues);
  const size_t n = c.seeds.size();
  for (const size_t num_values : kValueCounts) {
    for (const size_t off : kOffsets) {
      const uint64_t* values = c.values.data() + off;
      const std::string what = SimdLevelName(level) + " nv=" +
                               std::to_string(num_values) + " off=" +
                               std::to_string(off);
      // Output buffers are offset too, and accumulation starts from zero
      // (the contract: callers zero-fill each tile).
      std::vector<double> a(num_values + 8, 0.0);
      std::vector<double> b(num_values + 8, 0.0);

      scalar.olh_raw(c.seeds.data(), c.ys.data(), c.users.data(), n,
                     c.weights.data(), c.g, values, num_values,
                     a.data() + off);
      vec.olh_raw(c.seeds.data(), c.ys.data(), c.users.data(), n,
                  c.weights.data(), c.g, values, num_values, b.data() + off);
      for (size_t v = 0; v < num_values; ++v) {
        ExpectBitEqual(b[off + v], a[off + v], "olh_raw " + what);
      }

      std::fill(a.begin(), a.end(), 0.0);
      std::fill(b.begin(), b.end(), 0.0);
      scalar.olh_hist(c.hist.data(), c.pool, c.g, values, num_values,
                      a.data() + off);
      vec.olh_hist(c.hist.data(), c.pool, c.g, values, num_values,
                   b.data() + off);
      for (size_t v = 0; v < num_values; ++v) {
        ExpectBitEqual(b[off + v], a[off + v], "olh_hist " + what);
      }

      std::fill(a.begin(), a.end(), 0.0);
      std::fill(b.begin(), b.end(), 0.0);
      double gw_a = 0.0;
      double gw_b = 0.0;
      scalar.grr_raw(c.grr_reports.data(), c.users.data(), n,
                     c.weights.data(), values, num_values, a.data() + off,
                     &gw_a);
      vec.grr_raw(c.grr_reports.data(), c.users.data(), n, c.weights.data(),
                  values, num_values, b.data() + off, &gw_b);
      ExpectBitEqual(gw_b, gw_a, "grr group_weight " + what);
      for (size_t v = 0; v < num_values; ++v) {
        ExpectBitEqual(b[off + v], a[off + v], "grr_raw " + what);
      }

      std::fill(a.begin(), a.end(), 0.0);
      std::fill(b.begin(), b.end(), 0.0);
      // OUE bit positions must be in range; mask the fuzzed values.
      std::vector<uint64_t> bit_values(values, values + num_values);
      for (uint64_t& v : bit_values) v %= c.words_per_report * 64;
      scalar.oue_raw(c.oue_bits.data(), c.words_per_report, c.users.data(),
                     n, c.weights.data(), bit_values.data(), num_values,
                     a.data() + off);
      vec.oue_raw(c.oue_bits.data(), c.words_per_report, c.users.data(), n,
                  c.weights.data(), bit_values.data(), num_values,
                  b.data() + off);
      for (size_t v = 0; v < num_values; ++v) {
        ExpectBitEqual(b[off + v], a[off + v], "oue_raw " + what);
      }

      std::fill(a.begin(), a.end(), 0.0);
      std::fill(b.begin(), b.end(), 0.0);
      scalar.hr_spectrum(c.hr_indices.data(), c.hr_sums.data(),
                         c.hr_indices.size(), values, num_values,
                         a.data() + off);
      vec.hr_spectrum(c.hr_indices.data(), c.hr_sums.data(),
                      c.hr_indices.size(), values, num_values,
                      b.data() + off);
      for (size_t v = 0; v < num_values; ++v) {
        ExpectBitEqual(b[off + v], a[off + v], "hr_spectrum " + what);
      }
    }
  }
}

TEST(SimdKernelFuzzTest, AllLevelsMatchScalarBitwise) {
  for (const SimdLevel level : SupportedLevels()) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      FuzzKernelsAgainstScalar(level, seed);
    }
  }
}

// ---------------------------------------------------------------------------
// Accumulator level: EstimateManyWeighted under a forced level must match
// the scalar-forced run bitwise for every oracle, tiling, and span offset.

WeightVector MixedWeights(uint64_t n) {
  std::vector<double> w(n);
  for (uint64_t i = 0; i < n; ++i) {
    w[i] = 0.25 * static_cast<double>(i % 7) - 0.5;
  }
  return WeightVector(std::move(w));
}

template <typename Protocol, typename Accumulator>
void CheckAccumulatorBitIdenticalAcrossLevels(const Protocol& proto,
                                              uint64_t n, uint64_t domain) {
  const WeightVector w = MixedWeights(n);
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < domain; ++v) values.push_back(v);

  // Scalar reference on a fresh accumulator.
  std::vector<double> reference(values.size());
  {
    SetSimdLevel(SimdLevel::kScalar);
    Accumulator acc(proto);
    Rng rng(17);
    for (uint64_t u = 0; u < n; ++u) {
      acc.Add(proto.Encode((u * 13) % domain, rng), u);
    }
    acc.EstimateManyWeighted(values, w, reference);
  }
  for (const SimdLevel level : SupportedLevels()) {
    SetSimdLevel(level);
    Accumulator acc(proto);
    Rng rng(17);
    for (uint64_t u = 0; u < n; ++u) {
      acc.Add(proto.Encode((u * 13) % domain, rng), u);
    }
    // Tilings around both lane widths, with off-by-`tile` span starts (the
    // second tile of an odd tiling starts misaligned).
    for (const size_t tile : {size_t{1}, size_t{3}, size_t{4}, size_t{5}}) {
      std::vector<double> out(values.size(), -1.0);
      for (size_t v0 = 0; v0 < values.size(); v0 += tile) {
        const size_t len = std::min(tile, values.size() - v0);
        acc.EstimateManyWeighted(
            std::span<const uint64_t>(values.data() + v0, len), w,
            std::span<double>(out.data() + v0, len));
      }
      for (size_t i = 0; i < values.size(); ++i) {
        ExpectBitEqual(out[i], reference[i],
                       SimdLevelName(level) + " tile " +
                           std::to_string(tile) + " value " +
                           std::to_string(values[i]));
      }
    }
  }
  SetSimdLevel(SimdLevel::kAuto);
}

TEST(SimdAccumulatorTest, OlhUnpooledBitIdentical) {
  const OlhProtocol proto(1.0, 24, 0);
  CheckAccumulatorBitIdenticalAcrossLevels<OlhProtocol, OlhAccumulator>(
      proto, 500, 24);
}

TEST(SimdAccumulatorTest, OlhPooledBitIdentical) {
  const OlhProtocol proto(1.0, 24, 32);
  CheckAccumulatorBitIdenticalAcrossLevels<OlhProtocol, OlhAccumulator>(
      proto, 500, 24);
}

TEST(SimdAccumulatorTest, GrrBitIdentical) {
  const GrrProtocol proto(1.0, 24);
  CheckAccumulatorBitIdenticalAcrossLevels<GrrProtocol, GrrAccumulator>(
      proto, 500, 24);
}

TEST(SimdAccumulatorTest, OueBitIdentical) {
  const OueProtocol proto(1.0, 24);
  CheckAccumulatorBitIdenticalAcrossLevels<OueProtocol, OueAccumulator>(
      proto, 500, 24);
}

TEST(SimdAccumulatorTest, HadamardBitIdentical) {
  const HadamardProtocol proto(1.0, 24);
  CheckAccumulatorBitIdenticalAcrossLevels<HadamardProtocol,
                                           HadamardAccumulator>(proto, 500,
                                                                24);
}

// ---------------------------------------------------------------------------
// Engine level: forced levels x thread counts x cache states must answer
// bit-identically (the ISSUE's acceptance matrix).

Table TwoDimTable(uint64_t n = 2000) {
  TableSpec spec;
  spec.dims.push_back({"a", AttributeKind::kSensitiveOrdinal, 16,
                       ColumnDist::kGaussianBell, 1.0});
  spec.dims.push_back(
      {"b", AttributeKind::kSensitiveOrdinal, 16, ColumnDist::kZipf, 1.1});
  spec.measures.push_back(
      {"m", 0.0, 10.0, ColumnDist::kUniform, 1.0, -1, 0.0});
  return GenerateTable(spec, n, 99).ValueOrDie();
}

TEST(SimdEngineTest, BitIdenticalAcrossLevelsThreadsAndCache) {
  const Table table = TwoDimTable();
  const std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM T WHERE a BETWEEN 2 AND 11 AND b BETWEEN 1 AND "
      "13",
      "SELECT SUM(m) FROM T WHERE a BETWEEN 0 AND 7 AND b BETWEEN 4 AND 15"};
  auto make_engine = [&](SimdLevel level, int threads, bool cache) {
    EngineOptions options;
    options.mechanism = MechanismKind::kHio;
    options.params.epsilon = 2.0;
    options.params.fanout = 2;
    options.seed = 4242;
    options.num_threads = threads;
    options.enable_estimate_cache = cache;
    options.simd_level = level;
    return AnalyticsEngine::Create(table, options).ValueOrDie();
  };
  std::vector<double> reference;
  {
    auto engine = make_engine(SimdLevel::kScalar, 1, false);
    for (const auto& sql : sqls) {
      reference.push_back(engine->ExecuteSql(sql).ValueOrDie());
    }
  }
  for (const SimdLevel level : SupportedLevels()) {
    for (const int threads : {1, 2, 8}) {
      for (const bool cache : {false, true}) {
        auto engine = make_engine(level, threads, cache);
        for (size_t q = 0; q < sqls.size(); ++q) {
          ExpectBitEqual(engine->ExecuteSql(sqls[q]).ValueOrDie(),
                         reference[q],
                         SimdLevelName(level) + " threads " +
                             std::to_string(threads) +
                             (cache ? " cache" : " no-cache") + " query " +
                             std::to_string(q));
        }
      }
    }
  }
  SetSimdLevel(SimdLevel::kAuto);
}

// ---------------------------------------------------------------------------
// Level-name surface and dispatch plumbing.

TEST(SimdLevelTest, NamesRoundTrip) {
  for (const SimdLevel level :
       {SimdLevel::kAuto, SimdLevel::kScalar, SimdLevel::kAvx2,
        SimdLevel::kNeon}) {
    const auto parsed = SimdLevelFromString(SimdLevelName(level));
    ASSERT_TRUE(parsed.ok()) << SimdLevelName(level);
    EXPECT_EQ(parsed.value(), level);
  }
  EXPECT_EQ(SimdLevelFromString("AVX2").ValueOrDie(), SimdLevel::kAvx2);
  EXPECT_FALSE(SimdLevelFromString("sse9").ok());
  EXPECT_FALSE(SimdLevelFromString("").ok());
}

TEST(SimdLevelTest, DetectAndAutoAgree) {
  const SimdLevel best = DetectSimdLevel();
  EXPECT_TRUE(SimdLevelSupported(best));
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kAuto));
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kScalar));
  EXPECT_EQ(KernelsForLevel(SimdLevel::kAuto).level, best);
  SetSimdLevel(SimdLevel::kAuto);
  EXPECT_EQ(ActiveSimdLevel(), best);
  EXPECT_EQ(ActiveKernels().level, best);
  SetSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  SetSimdLevel(SimdLevel::kAuto);
}

TEST(SimdLevelDeathTest, ForcingUnsupportedLevelIsFatal) {
  // A forced level the host cannot run must die loudly (LDP_CHECK), never
  // silently fall back — a benchmark recorded under the wrong kernels would
  // be worse than no benchmark.
  const SimdLevel unsupported = UnsupportedLevel();
  EXPECT_DEATH({ SetSimdLevel(unsupported); },
               "simd_level_supported_on_host");
  EXPECT_DEATH({ (void)KernelsForLevel(unsupported); },
               "simd_level_supported_on_host");
}

}  // namespace
}  // namespace ldp
