#include "common/status.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LDP_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // half of 6 is odd
  EXPECT_FALSE(Quarter(3).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  LDP_RETURN_NOT_OK(FailIfNegative(x));
  LDP_RETURN_NOT_OK(FailIfNegative(x - 10));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(10).ok());
  EXPECT_FALSE(Chain(5).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

TEST(ResultDeathTest, ValueOrDieAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "boom");
}

}  // namespace
}  // namespace ldp
