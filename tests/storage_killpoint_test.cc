// Kill-point sweep: crash the durable CollectionServer at *every* mutating
// filesystem operation its workload performs — mid-append, between append
// and fsync, during snapshot writes, between snapshot publish and WAL
// truncation — reboot with the unsynced tail dropped or torn, recover, and
// require that the recovered server equals, bit for bit, a reference server
// that ingested exactly the durable frame prefix: same IngestStats (so no
// frame was silently lost or invented), same estimates. Under the
// sync-always policy the durable prefix must be exactly the set of frames
// whose Ingest call succeeded. The whole sweep runs for num_threads {1, 8}
// with the estimate cache off and on (acceptance criteria of the durability
// PR).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/protocol.h"
#include "storage/fault_fs.h"

namespace ldp {
namespace {

constexpr char kDir[] = "/campaign";
constexpr uint64_t kFrames = 18;

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 54).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 6).ok());
  return schema;
}

const std::vector<std::vector<Interval>>& QueryBoxes() {
  static const auto* boxes = new std::vector<std::vector<Interval>>{
      {{10, 40}, {2, 2}},
      {{0, 53}, {0, 5}},
  };
  return *boxes;
}

struct Workload {
  CollectionSpec spec;
  std::vector<std::string> frames;
  std::vector<uint64_t> users;
};

Workload MakeWorkload() {
  Workload w;
  MechanismParams params;
  params.epsilon = 2.0;
  w.spec = CollectionSpec::FromSchema(TestSchema(), MechanismKind::kHio,
                                      params);
  const LdpClient client = LdpClient::Create(w.spec).ValueOrDie();
  Rng rng(71);
  Rng data_rng(72);
  for (uint64_t i = 0; i < kFrames; ++i) {
    const uint64_t user = (i > 0 && i % 6 == 4) ? w.users[i - 1] : i;
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(54)),
        static_cast<uint32_t>(data_rng.UniformInt(6))};
    std::string frame = client.EncodeUser(values, rng).ValueOrDie();
    if (i % 9 == 7) frame.back() ^= 0x5a;  // corrupt on the wire
    w.frames.push_back(std::move(frame));
    w.users.push_back(user);
  }
  return w;
}

struct PrefixState {
  IngestStats stats;
  std::vector<double> estimates;  // empty until a report is accepted
};

// expected[p]: the exact server state after serially ingesting frames [0, p).
std::vector<PrefixState> ReferencePrefixes(const Workload& w) {
  std::vector<PrefixState> expected;
  CollectionServer server = CollectionServer::Create(w.spec).ValueOrDie();
  const WeightVector weights = WeightVector::Ones(1000);
  for (uint64_t p = 0; p <= kFrames; ++p) {
    if (p > 0) (void)server.Ingest(w.frames[p - 1], w.users[p - 1]);
    PrefixState state;
    state.stats = server.ingest_stats();
    if (state.stats.accepted > 0) {
      for (const auto& box : QueryBoxes()) {
        state.estimates.push_back(
            server.EstimateBox(box, weights).ValueOrDie());
      }
    }
    expected.push_back(std::move(state));
  }
  return expected;
}

StorageOptions MakeStorage(FaultFs* fs) {
  StorageOptions storage;
  storage.dir = kDir;
  storage.fs = fs;
  storage.sync = WalSyncPolicy::kAlways;
  storage.snapshot_every_frames = 6;  // snapshot machinery inside the sweep
  storage.segment_bytes = 2048;       // plus organic segment rotation
  return storage;
}

// One crashed run + recovery. Returns the number of frames whose Ingest
// call succeeded before the crash.
uint64_t RunUntilCrash(const Workload& w, FaultFs* fs) {
  uint64_t succeeded = 0;
  auto server_or = CollectionServer::CreateDurable(w.spec, MakeStorage(fs));
  if (!server_or.ok()) {
    // The kill-point fired during the open itself — a typed error, no state.
    EXPECT_EQ(server_or.status().code(), StatusCode::kIoError);
    return 0;
  }
  CollectionServer server = std::move(server_or).value();
  for (uint64_t i = 0; i < kFrames; ++i) {
    const Status fate = server.Ingest(w.frames[i], w.users[i]);
    // kIoError is the WAL refusing the frame (crashed disk): it must not
    // count as ingested. Every other code is a normal per-frame fate.
    if (fate.code() != StatusCode::kIoError) ++succeeded;
  }
  return succeeded;
}

void VerifyRecovery(const Workload& w,
                    const std::vector<PrefixState>& expected, FaultFs* fs,
                    uint64_t succeeded, int num_threads, size_t cache_bytes,
                    uint64_t kill_op) {
  SCOPED_TRACE("kill_op=" + std::to_string(kill_op) +
               " threads=" + std::to_string(num_threads) +
               " cache=" + std::to_string(cache_bytes));
  // Recovery must never abort, whatever the crash left behind.
  auto recovered_or =
      CollectionServer::CreateDurable(w.spec, MakeStorage(fs), num_threads);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().message();
  CollectionServer recovered = std::move(recovered_or).value();
  if (cache_bytes > 0) recovered.EnableEstimateCache(cache_bytes);

  // The recovered state corresponds to some durable prefix of the stream...
  const uint64_t prefix = recovered.ingest_stats().total();
  ASSERT_LE(prefix, kFrames);
  // ...and under sync-always it is *exactly* the acknowledged frames: no
  // acknowledged frame lost, no unacknowledged frame resurrected as extra
  // (the crashing frame itself may legitimately be torn away).
  EXPECT_EQ(prefix, succeeded);

  const PrefixState& want = expected[prefix];
  EXPECT_EQ(recovered.ingest_stats().accepted, want.stats.accepted);
  EXPECT_EQ(recovered.ingest_stats().duplicate, want.stats.duplicate);
  EXPECT_EQ(recovered.ingest_stats().corrupt, want.stats.corrupt);
  EXPECT_EQ(recovered.ingest_stats().rejected, want.stats.rejected);
  EXPECT_EQ(recovered.num_reports(), want.stats.accepted);

  const WeightVector weights = WeightVector::Ones(1000);
  if (want.estimates.empty()) {
    const auto estimate = recovered.EstimateBox(QueryBoxes()[0], weights);
    ASSERT_FALSE(estimate.ok());
    EXPECT_EQ(estimate.status().code(), StatusCode::kFailedPrecondition);
  } else {
    for (size_t b = 0; b < QueryBoxes().size(); ++b) {
      EXPECT_EQ(recovered.EstimateBox(QueryBoxes()[b], weights).ValueOrDie(),
                want.estimates[b])
          << "box " << b;
    }
  }
}

void SweepAllKillPoints(int num_threads, size_t cache_bytes) {
  const Workload w = MakeWorkload();
  const std::vector<PrefixState> expected = ReferencePrefixes(w);

  // Fault-free dry run bounds the sweep: every op index in it is a distinct
  // kill-point of the same deterministic workload.
  uint64_t total_ops = 0;
  {
    FaultFs fs;
    const uint64_t succeeded = RunUntilCrash(w, &fs);
    EXPECT_EQ(succeeded, kFrames);
    total_ops = fs.mutating_ops();
  }
  ASSERT_GT(total_ops, 2 * kFrames);  // appends + fsyncs + snapshots

  for (uint64_t kill = 1; kill <= total_ops; ++kill) {
    FaultFs::Options fault;
    fault.crash_at_op = kill;
    FaultFs fs(fault);
    const uint64_t succeeded = RunUntilCrash(w, &fs);
    EXPECT_TRUE(fs.dead()) << "kill-point " << kill << " never fired";
    // Alternate the physical failure mode: clean page-cache loss vs a torn
    // write surviving in part.
    fs.Reboot(kill % 2 == 0 ? FaultFs::TearMode::kDropUnsynced
                            : FaultFs::TearMode::kTearUnsynced);
    VerifyRecovery(w, expected, &fs, succeeded, num_threads, cache_bytes,
                   kill);
  }
}

TEST(StorageKillPointTest, SweepSingleThreadNoCache) {
  SweepAllKillPoints(/*num_threads=*/1, /*cache_bytes=*/0);
}

TEST(StorageKillPointTest, SweepSingleThreadWithCache) {
  SweepAllKillPoints(/*num_threads=*/1, /*cache_bytes=*/size_t{1} << 20);
}

TEST(StorageKillPointTest, SweepEightThreadsNoCache) {
  SweepAllKillPoints(/*num_threads=*/8, /*cache_bytes=*/0);
}

TEST(StorageKillPointTest, SweepEightThreadsWithCache) {
  SweepAllKillPoints(/*num_threads=*/8, /*cache_bytes=*/size_t{1} << 20);
}

// The batch path shares the WAL-before-apply discipline; sweep it too with
// one record per batch of 6 frames. A crashed batch must be all-or-nothing.
TEST(StorageKillPointTest, BatchIngestCrashesAreBatchAligned) {
  const Workload w = MakeWorkload();
  const std::vector<PrefixState> expected = ReferencePrefixes(w);
  std::vector<CollectionServer::ReportFrame> frames;
  for (uint64_t i = 0; i < kFrames; ++i) {
    frames.push_back(CollectionServer::ReportFrame{w.frames[i], w.users[i]});
  }
  const std::span<const CollectionServer::ReportFrame> all(frames);

  uint64_t total_ops = 0;
  {
    FaultFs fs;
    auto server =
        CollectionServer::CreateDurable(w.spec, MakeStorage(&fs)).ValueOrDie();
    for (uint64_t b = 0; b < kFrames / 6; ++b) {
      ASSERT_TRUE(server.IngestBatch(all.subspan(b * 6, 6)).ok());
    }
    total_ops = fs.mutating_ops();
  }

  for (uint64_t kill = 1; kill <= total_ops; ++kill) {
    SCOPED_TRACE("kill_op=" + std::to_string(kill));
    FaultFs::Options fault;
    fault.crash_at_op = kill;
    FaultFs fs(fault);
    {
      auto server_or = CollectionServer::CreateDurable(w.spec, MakeStorage(&fs));
      if (server_or.ok()) {
        CollectionServer server = std::move(server_or).value();
        for (uint64_t b = 0; b < kFrames / 6; ++b) {
          (void)server.IngestBatch(all.subspan(b * 6, 6));
        }
      }
    }
    fs.Reboot(kill % 2 == 0 ? FaultFs::TearMode::kDropUnsynced
                            : FaultFs::TearMode::kTearUnsynced);
    auto recovered_or =
        CollectionServer::CreateDurable(w.spec, MakeStorage(&fs));
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().message();
    const CollectionServer& recovered = recovered_or.value();
    const uint64_t prefix = recovered.ingest_stats().total();
    // Batch alignment: recovery lands on a whole-batch boundary.
    EXPECT_EQ(prefix % 6, 0u);
    ASSERT_LE(prefix, kFrames);
    const PrefixState& want = expected[prefix];
    EXPECT_EQ(recovered.ingest_stats().accepted, want.stats.accepted);
    EXPECT_EQ(recovered.ingest_stats().duplicate, want.stats.duplicate);
    EXPECT_EQ(recovered.ingest_stats().corrupt, want.stats.corrupt);
    EXPECT_EQ(recovered.ingest_stats().rejected, want.stats.rejected);
    if (!want.estimates.empty()) {
      const WeightVector weights = WeightVector::Ones(1000);
      for (size_t b = 0; b < QueryBoxes().size(); ++b) {
        EXPECT_EQ(
            recovered.EstimateBox(QueryBoxes()[b], weights).ValueOrDie(),
            want.estimates[b])
            << "box " << b;
      }
    }
  }
}

}  // namespace
}  // namespace ldp
