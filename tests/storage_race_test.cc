// Concurrency regression test for the durable server (runs under TSan via
// the exec-tsan/check-all-tsan presets): ingestion rounds writing the WAL
// race concurrent EstimateBox readers, exactly the ingest_estimate_race_test
// setup but with durability on. The WAL append and snapshot writes happen
// inside the writer's unique-lock section, so the test proves the storage
// layer adds no unsynchronized state to the read path — every estimate a
// racing reader observes is still bit-identical to the serial server's
// estimate for the same prefix — and that the directory written under the
// race recovers bit-identically afterwards.

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/protocol.h"
#include "storage/fault_fs.h"

namespace ldp {
namespace {

constexpr uint64_t kRounds = 4;
constexpr uint64_t kUsersPerRound = 150;
constexpr uint64_t kUsers = kRounds * kUsersPerRound;
constexpr char kDir[] = "/campaign";

Schema RaceSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 54).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 6).ok());
  return schema;
}

const std::vector<std::vector<Interval>>& QueryBoxes() {
  static const auto* boxes = new std::vector<std::vector<Interval>>{
      {{10, 40}, {2, 2}},
      {{0, 53}, {0, 5}},
  };
  return *boxes;
}

struct RaceSetup {
  CollectionSpec spec;
  std::vector<std::string> storage;
  std::vector<CollectionServer::ReportFrame> frames;
  std::map<uint64_t, std::vector<double>> expected;  // num_reports -> per box
};

RaceSetup MakeSetup() {
  RaceSetup setup;
  MechanismParams params;
  params.epsilon = 2.0;
  setup.spec =
      CollectionSpec::FromSchema(RaceSchema(), MechanismKind::kHio, params);
  const LdpClient client = LdpClient::Create(setup.spec).ValueOrDie();
  Rng rng(91);
  Rng data_rng(92);
  setup.storage.reserve(kUsers);
  for (uint64_t u = 0; u < kUsers; ++u) {
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(54)),
        static_cast<uint32_t>(data_rng.UniformInt(6))};
    setup.storage.push_back(client.EncodeUser(values, rng).ValueOrDie());
  }
  for (uint64_t u = 0; u < kUsers; ++u) {
    setup.frames.push_back(
        CollectionServer::ReportFrame{setup.storage[u], u});
  }
  CollectionServer reference =
      CollectionServer::Create(setup.spec).ValueOrDie();
  const WeightVector weights = WeightVector::Ones(kUsers);
  const std::span<const CollectionServer::ReportFrame> frames(setup.frames);
  for (uint64_t r = 0; r < kRounds; ++r) {
    EXPECT_TRUE(
        reference
            .IngestBatch(frames.subspan(r * kUsersPerRound, kUsersPerRound))
            .ok());
    std::vector<double> per_box;
    for (const auto& box : QueryBoxes()) {
      per_box.push_back(reference.EstimateBox(box, weights).ValueOrDie());
    }
    setup.expected[reference.num_reports()] = std::move(per_box);
  }
  return setup;
}

TEST(StorageRaceTest, DurableIngestRacesEstimatorsAndRecovers) {
  const RaceSetup setup = MakeSetup();
  const WeightVector weights = WeightVector::Ones(kUsers);
  const std::span<const CollectionServer::ReportFrame> frames(setup.frames);

  FaultFs fs;  // in-memory, internally locked: safe to share across threads
  StorageOptions storage;
  storage.dir = kDir;
  storage.fs = &fs;
  storage.sync = WalSyncPolicy::kBatch;
  storage.sync_every_appends = 2;
  storage.snapshot_every_frames = kUsersPerRound + 7;  // snapshots mid-race
  {
    CollectionServer server =
        CollectionServer::CreateDurable(setup.spec, storage,
                                        /*num_threads=*/3)
            .ValueOrDie();

    std::shared_mutex mu;
    std::atomic<bool> done{false};
    std::atomic<uint64_t> reader_passes{0};
    std::atomic<int> failures{0};

    auto reader = [&] {
      while (!done.load(std::memory_order_acquire)) {
        {
          std::shared_lock<std::shared_mutex> lock(mu);
          const uint64_t n = server.num_reports();
          if (n > 0) {
            const auto it = setup.expected.find(n);
            if (it == setup.expected.end()) {
              failures.fetch_add(1);  // partially applied round leaked out
            } else {
              for (size_t b = 0; b < QueryBoxes().size(); ++b) {
                const double est =
                    server.EstimateBox(QueryBoxes()[b], weights).ValueOrDie();
                if (est != it->second[b]) failures.fetch_add(1);
              }
            }
          }
        }
        reader_passes.fetch_add(1, std::memory_order_release);
        std::this_thread::yield();
      }
    };
    std::thread r1(reader);
    std::thread r2(reader);

    for (uint64_t r = 0; r < kRounds; ++r) {
      {
        std::unique_lock<std::shared_mutex> lock(mu);
        const auto round =
            frames.subspan(r * kUsersPerRound, kUsersPerRound);
        if (r % 2 == 0) {
          ASSERT_TRUE(server.IngestBatch(round).ok()) << "round " << r;
        } else {
          for (const CollectionServer::ReportFrame& f : round) {
            ASSERT_TRUE(server.Ingest(f.bytes, f.user).ok());
          }
        }
      }
      const uint64_t target =
          reader_passes.load(std::memory_order_acquire) + 4;
      while (reader_passes.load(std::memory_order_acquire) < target) {
        std::this_thread::yield();
      }
    }
    done.store(true, std::memory_order_release);
    r1.join();
    r2.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.num_reports(), kUsers);
    ASSERT_TRUE(server.Flush().ok());
  }

  // The directory written under the race recovers to the exact final state.
  fs.Reboot(FaultFs::TearMode::kDropUnsynced);
  CollectionServer recovered =
      CollectionServer::CreateDurable(setup.spec, storage, /*num_threads=*/3)
          .ValueOrDie();
  EXPECT_EQ(recovered.num_reports(), kUsers);
  EXPECT_EQ(recovered.ingest_stats().accepted, kUsers);
  const auto& final_expected = setup.expected.at(kUsers);
  for (size_t b = 0; b < QueryBoxes().size(); ++b) {
    EXPECT_EQ(recovered.EstimateBox(QueryBoxes()[b], weights).ValueOrDie(),
              final_expected[b])
        << "box " << b;
  }
}

}  // namespace
}  // namespace ldp
