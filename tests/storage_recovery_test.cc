// Crash-recovery tests for the durable CollectionServer: recovered servers
// must be *bit-identical* to a process that never crashed — same estimates,
// same IngestStats (quarantine counters included), same dedup decisions —
// across thread counts and with the estimate cache on or off. Degraded
// artifacts (torn WAL tails, corrupt snapshots) must shrink recovery to the
// longest checksummed-valid prefix with a typed Status, never abort it.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/protocol.h"
#include "obs/metrics.h"
#include "storage/fault_fs.h"

namespace ldp {
namespace {

constexpr char kDir[] = "/campaign";

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("age", 54).ok());
  EXPECT_TRUE(schema.AddCategorical("state", 6).ok());
  return schema;
}

const std::vector<std::vector<Interval>>& QueryBoxes() {
  static const auto* boxes = new std::vector<std::vector<Interval>>{
      {{10, 40}, {2, 2}},
      {{0, 53}, {0, 5}},
      {{5, 12}, {1, 4}},
  };
  return *boxes;
}

struct Workload {
  CollectionSpec spec;
  std::vector<std::string> frames;  // wire bytes, ingest order
  std::vector<uint64_t> users;
};

// `n` frames mixing the three non-accepted fates in: every 7th frame (mod 3)
// repeats the previous frame's user (duplicate), every 11th (mod 5) has a
// flipped payload byte (corrupt). The durable server must replay all of them
// to the same fates the reference server decides.
Workload MakeWorkload(uint64_t n) {
  Workload w;
  MechanismParams params;
  params.epsilon = 2.0;
  w.spec = CollectionSpec::FromSchema(TestSchema(), MechanismKind::kHio,
                                      params);
  const LdpClient client = LdpClient::Create(w.spec).ValueOrDie();
  Rng rng(41);
  Rng data_rng(42);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t user = (i > 0 && i % 7 == 3) ? w.users[i - 1] : i;
    const std::vector<uint32_t> values = {
        static_cast<uint32_t>(data_rng.UniformInt(54)),
        static_cast<uint32_t>(data_rng.UniformInt(6))};
    std::string frame = client.EncodeUser(values, rng).ValueOrDie();
    if (i % 11 == 5) frame.back() ^= 0x5a;  // fails the frame checksum
    w.frames.push_back(std::move(frame));
    w.users.push_back(user);
  }
  return w;
}

struct Observed {
  IngestStats stats;
  uint64_t num_reports = 0;
  std::vector<double> estimates;  // one per query box; empty if none accepted
};

Observed Observe(const CollectionServer& server) {
  Observed o;
  o.stats = server.ingest_stats();
  o.num_reports = server.num_reports();
  if (o.stats.accepted > 0) {
    const WeightVector weights = WeightVector::Ones(1000);
    for (const auto& box : QueryBoxes()) {
      o.estimates.push_back(server.EstimateBox(box, weights).ValueOrDie());
    }
  }
  return o;
}

void ExpectIdentical(const Observed& recovered, const Observed& reference) {
  EXPECT_EQ(recovered.stats.accepted, reference.stats.accepted);
  EXPECT_EQ(recovered.stats.duplicate, reference.stats.duplicate);
  EXPECT_EQ(recovered.stats.corrupt, reference.stats.corrupt);
  EXPECT_EQ(recovered.stats.rejected, reference.stats.rejected);
  EXPECT_EQ(recovered.num_reports, reference.num_reports);
  ASSERT_EQ(recovered.estimates.size(), reference.estimates.size());
  for (size_t b = 0; b < reference.estimates.size(); ++b) {
    // Bitwise equality, not approximate: recovery must replay the exact
    // accepted sequence through the exact deterministic estimators.
    EXPECT_EQ(recovered.estimates[b], reference.estimates[b]) << "box " << b;
  }
}

// Reference: a never-durable server fed the same frames one at a time.
Observed ReferenceRun(const Workload& w, uint64_t n) {
  CollectionServer server = CollectionServer::Create(w.spec).ValueOrDie();
  for (uint64_t i = 0; i < n; ++i) {
    (void)server.Ingest(w.frames[i], w.users[i]);
  }
  return Observe(server);
}

StorageOptions MakeStorage(FaultFs* fs, uint64_t snapshot_every) {
  StorageOptions storage;
  storage.dir = kDir;
  storage.fs = fs;
  storage.sync = WalSyncPolicy::kAlways;
  storage.snapshot_every_frames = snapshot_every;
  return storage;
}

TEST(StorageRecoveryTest, EmptyDirectoryIsAFreshServer) {
  const Workload w = MakeWorkload(4);
  FaultFs fs;
  CollectionServer server =
      CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 0))
          .ValueOrDie();
  ASSERT_NE(server.recovery_info(), nullptr);
  EXPECT_FALSE(server.recovery_info()->snapshot_loaded);
  EXPECT_EQ(server.recovery_info()->replayed_frames, 0u);
  EXPECT_TRUE(server.recovery_info()->degradation.ok());
  for (uint64_t i = 0; i < 4; ++i) {
    (void)server.Ingest(w.frames[i], w.users[i]);
  }
  EXPECT_EQ(server.ingest_stats().total(), 4u);
}

TEST(StorageRecoveryTest, EmptyWalRecoversToEmptyServer) {
  const Workload w = MakeWorkload(1);
  FaultFs fs;
  { // Open (creating the directory and nothing else), then "crash".
    (void)CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 0))
        .ValueOrDie();
  }
  fs.Reboot(FaultFs::TearMode::kDropUnsynced);
  CollectionServer recovered =
      CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 0))
          .ValueOrDie();
  EXPECT_EQ(recovered.num_reports(), 0u);
  EXPECT_EQ(recovered.ingest_stats().total(), 0u);
  EXPECT_TRUE(recovered.recovery_info()->degradation.ok());
  // Estimating from nothing stays a typed error, exactly like a fresh server.
  const auto estimate =
      recovered.EstimateBox(QueryBoxes()[0], WeightVector::Ones(1000));
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kFailedPrecondition);
}

// The full matrix the acceptance criteria name: num_threads x estimate
// cache, each recovering the same crashed directory bit-identically.
TEST(StorageRecoveryTest, RecoveredStateMatchesReferenceAcrossThreadsAndCache) {
  constexpr uint64_t kFrames = 48;
  const Workload w = MakeWorkload(kFrames);
  const Observed reference = ReferenceRun(w, kFrames);

  for (const int num_threads : {1, 8}) {
    for (const size_t cache_bytes : {size_t{0}, size_t{1} << 20}) {
      FaultFs fs;
      {
        CollectionServer server =
            CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 16),
                                            num_threads)
                .ValueOrDie();
        if (cache_bytes > 0) server.EnableEstimateCache(cache_bytes);
        for (uint64_t i = 0; i < kFrames; ++i) {
          (void)server.Ingest(w.frames[i], w.users[i]);
        }
        ExpectIdentical(Observe(server), reference);
      }
      fs.Reboot(FaultFs::TearMode::kDropUnsynced);  // hard power cut

      CollectionServer recovered =
          CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 16),
                                          num_threads)
              .ValueOrDie();
      if (cache_bytes > 0) recovered.EnableEstimateCache(cache_bytes);
      SCOPED_TRACE("threads=" + std::to_string(num_threads) +
                   " cache=" + std::to_string(cache_bytes));
      ASSERT_NE(recovered.recovery_info(), nullptr);
      EXPECT_TRUE(recovered.recovery_info()->snapshot_loaded);
      ExpectIdentical(Observe(recovered), reference);
      // Second read exercises the estimate-cache hit path when enabled and
      // must reproduce the same doubles.
      ExpectIdentical(Observe(recovered), reference);
      // Dedup state survived: an accepted user's retry is still a duplicate.
      EXPECT_TRUE(recovered.has_report(0));
      const Status retry = recovered.Ingest(w.frames[0], w.users[0]);
      EXPECT_EQ(retry.code(), StatusCode::kAlreadyExists);
    }
  }
}

TEST(StorageRecoveryTest, BatchIngestRecoversIdentically) {
  constexpr uint64_t kFrames = 45;
  const Workload w = MakeWorkload(kFrames);

  // Reference uses the batch path too (its fates are Ingest-equivalent).
  CollectionServer reference = CollectionServer::Create(w.spec).ValueOrDie();
  std::vector<CollectionServer::ReportFrame> frames;
  for (uint64_t i = 0; i < kFrames; ++i) {
    frames.push_back(CollectionServer::ReportFrame{w.frames[i], w.users[i]});
  }
  const std::span<const CollectionServer::ReportFrame> all(frames);
  ASSERT_TRUE(reference.IngestBatch(all.subspan(0, 15)).ok());
  ASSERT_TRUE(reference.IngestBatch(all.subspan(15, 15)).ok());
  ASSERT_TRUE(reference.IngestBatch(all.subspan(30, 15)).ok());
  const Observed expected = Observe(reference);

  FaultFs fs;
  {
    CollectionServer server =
        CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 20),
                                        /*num_threads=*/8)
            .ValueOrDie();
    ASSERT_TRUE(server.IngestBatch(all.subspan(0, 15)).ok());
    ASSERT_TRUE(server.IngestBatch(all.subspan(15, 15)).ok());
    ASSERT_TRUE(server.IngestBatch(all.subspan(30, 15)).ok());
    ASSERT_TRUE(server.Flush().ok());
  }
  fs.Reboot(FaultFs::TearMode::kDropUnsynced);
  CollectionServer recovered =
      CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 20),
                                      /*num_threads=*/8)
          .ValueOrDie();
  ExpectIdentical(Observe(recovered), expected);
  EXPECT_GT(GlobalMetrics().counter("storage.wal_appends")->value(), 0u);
  EXPECT_GT(
      GlobalMetrics().counter("storage.recovery_replayed_frames")->value(),
      0u);
}

TEST(StorageRecoveryTest, WalWithOnlyATornFinalRecordRecoversEmpty) {
  const Workload w = MakeWorkload(2);
  FaultFs fs;
  {
    StorageOptions storage = MakeStorage(&fs, 0);
    storage.sync = WalSyncPolicy::kNever;  // nothing reaches the platter
    CollectionServer server =
        CollectionServer::CreateDurable(w.spec, storage).ValueOrDie();
    ASSERT_TRUE(server.Ingest(w.frames[0], w.users[0]).ok());
  }
  fs.Reboot(FaultFs::TearMode::kTearUnsynced);  // half the record survives

  CollectionServer recovered =
      CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 0))
          .ValueOrDie();
  EXPECT_EQ(recovered.num_reports(), 0u);
  EXPECT_EQ(recovered.ingest_stats().total(), 0u);
  ASSERT_NE(recovered.recovery_info(), nullptr);
  EXPECT_TRUE(recovered.recovery_info()->wal_tail_torn);
  EXPECT_FALSE(recovered.recovery_info()->degradation.ok());
  EXPECT_GT(recovered.recovery_info()->wal_dropped_bytes, 0u);
  // The degraded server still serves: new ingest works immediately.
  ASSERT_TRUE(recovered.Ingest(w.frames[1], w.users[1]).ok());
  EXPECT_EQ(recovered.num_reports(), 1u);
}

TEST(StorageRecoveryTest, CorruptNewestSnapshotFallsBackToOlderLosslessly) {
  constexpr uint64_t kFrames = 24;
  const Workload w = MakeWorkload(kFrames);
  const Observed reference = ReferenceRun(w, kFrames);

  FaultFs fs;
  {
    CollectionServer server =
        CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 8))
            .ValueOrDie();
    for (uint64_t i = 0; i < kFrames; ++i) {
      (void)server.Ingest(w.frames[i], w.users[i]);
    }
  }
  // Retention keeps the latest two snapshot generations; find and corrupt
  // the newest .ldps file's checksum header.
  std::vector<std::string> snapshots;
  const std::vector<std::string> names = fs.ListDir(kDir).ValueOrDie();
  for (const std::string& name : names) {
    if (name.size() > 5 && name.substr(name.size() - 5) == ".ldps") {
      snapshots.push_back(name);
    }
  }
  ASSERT_EQ(snapshots.size(), 2u);
  const std::string newest = JoinPath(kDir, snapshots.back());
  const uint64_t size = fs.ReadFileToString(newest).ValueOrDie().size();
  fs.CorruptByte(newest, size - 9);  // header checksum byte
  fs.Reboot(FaultFs::TearMode::kDropUnsynced);

  CollectionServer recovered =
      CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 8))
          .ValueOrDie();
  ASSERT_NE(recovered.recovery_info(), nullptr);
  EXPECT_EQ(recovered.recovery_info()->snapshots_quarantined, 1u);
  EXPECT_TRUE(recovered.recovery_info()->snapshot_loaded);  // older one
  EXPECT_FALSE(recovered.recovery_info()->degradation.ok());
  ExpectIdentical(Observe(recovered), reference);
}

TEST(StorageRecoveryTest, CorruptOnlySnapshotFallsBackToFullWalReplay) {
  constexpr uint64_t kFrames = 10;
  const Workload w = MakeWorkload(kFrames);
  const Observed reference = ReferenceRun(w, kFrames);

  FaultFs fs;
  {
    CollectionServer server =
        CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 8))
            .ValueOrDie();
    for (uint64_t i = 0; i < kFrames; ++i) {
      (void)server.Ingest(w.frames[i], w.users[i]);
    }
  }
  std::string snapshot_name;
  const std::vector<std::string> names = fs.ListDir(kDir).ValueOrDie();
  for (const std::string& name : names) {
    if (name.size() > 5 && name.substr(name.size() - 5) == ".ldps") {
      ASSERT_TRUE(snapshot_name.empty()) << "expected a single snapshot";
      snapshot_name = name;
    }
  }
  ASSERT_FALSE(snapshot_name.empty());
  fs.CorruptByte(JoinPath(kDir, snapshot_name), 0);
  fs.Reboot(FaultFs::TearMode::kDropUnsynced);

  CollectionServer recovered =
      CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 8))
          .ValueOrDie();
  ASSERT_NE(recovered.recovery_info(), nullptr);
  EXPECT_EQ(recovered.recovery_info()->snapshots_quarantined, 1u);
  EXPECT_FALSE(recovered.recovery_info()->snapshot_loaded);
  EXPECT_EQ(recovered.recovery_info()->replayed_frames, kFrames);
  ExpectIdentical(Observe(recovered), reference);
}

TEST(StorageRecoveryTest, WrongSpecDirectoryIsRefused) {
  const Workload w = MakeWorkload(10);
  FaultFs fs;
  {
    CollectionServer server =
        CollectionServer::CreateDurable(w.spec, MakeStorage(&fs, 4))
            .ValueOrDie();
    for (uint64_t i = 0; i < 10; ++i) {
      (void)server.Ingest(w.frames[i], w.users[i]);
    }
  }
  CollectionSpec other = w.spec;
  other.params.epsilon = 4.0;  // a different campaign
  const auto recovered =
      CollectionServer::CreateDurable(other, MakeStorage(&fs, 4));
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInvalidArgument);
}

// The real-disk smoke test: everything above runs on FaultFs; this one
// proves PosixFs wiring (open/append/fsync/rename/list) works end to end.
TEST(StorageRecoveryTest, PosixFilesystemRoundTrip) {
  constexpr uint64_t kFrames = 12;
  const Workload w = MakeWorkload(kFrames);
  const Observed reference = ReferenceRun(w, kFrames);

  const std::string dir =
      ::testing::TempDir() + "ldp_storage_posix_roundtrip";
  // A previous crashed run may have left a campaign behind; start fresh.
  if (const auto stale = PosixFs().ListDir(dir); stale.ok()) {
    for (const std::string& name : stale.value()) {
      (void)PosixFs().RemoveFile(JoinPath(dir, name));
    }
  }
  StorageOptions storage;
  storage.dir = dir;  // fs == nullptr -> PosixFs()
  storage.sync = WalSyncPolicy::kBatch;
  storage.sync_every_appends = 4;
  storage.snapshot_every_frames = 5;
  {
    CollectionServer server =
        CollectionServer::CreateDurable(w.spec, storage).ValueOrDie();
    for (uint64_t i = 0; i < kFrames; ++i) {
      (void)server.Ingest(w.frames[i], w.users[i]);
    }
    ASSERT_TRUE(server.Flush().ok());
  }
  CollectionServer recovered =
      CollectionServer::CreateDurable(w.spec, storage).ValueOrDie();
  ExpectIdentical(Observe(recovered), reference);

  // Clean up the temp campaign directory.
  const std::vector<std::string> leftover = PosixFs().ListDir(dir).ValueOrDie();
  for (const std::string& name : leftover) {
    (void)PosixFs().RemoveFile(JoinPath(dir, name));
  }
}

}  // namespace
}  // namespace ldp
