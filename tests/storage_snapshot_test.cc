// Snapshot file tests: checksummed roundtrip, quarantine-and-fall-back on
// corruption (flipped header byte), spec mismatch refusal, retention
// deletes, and .tmp leftovers being invisible to recovery.

#include <gtest/gtest.h>

#include <string>

#include "storage/fault_fs.h"
#include "storage/snapshot.h"

namespace ldp {
namespace {

constexpr char kDir[] = "/snap";
constexpr char kSpec[] = "spec-v1";

SnapshotData MakeData(uint64_t wal_seq, uint64_t accepted) {
  SnapshotData data;
  data.wal_seq = wal_seq;
  data.accepted = accepted;
  data.duplicate = 2;
  data.corrupt = 3;
  data.rejected = 1;
  data.spec = kSpec;
  for (uint64_t i = 0; i < accepted; ++i) {
    data.entries.push_back(
        SnapshotEntry{100 + i, "payload-" + std::to_string(wal_seq) + "-" +
                                   std::to_string(i)});
  }
  return data;
}

Status Write(Fs& fs, const SnapshotData& data) {
  return WriteSnapshotFile(fs, kDir, data, data.entries);
}

TEST(SnapshotTest, WriteLoadRoundTrip) {
  FaultFs fs;
  ASSERT_TRUE(fs.CreateDir(kDir).ok());
  const SnapshotData data = MakeData(/*wal_seq=*/7, /*accepted=*/4);
  ASSERT_TRUE(Write(fs, data).ok());

  const SnapshotLoad load = LoadLatestSnapshot(fs, kDir, kSpec).ValueOrDie();
  ASSERT_TRUE(load.loaded);
  EXPECT_EQ(load.quarantined, 0u);
  EXPECT_TRUE(load.note.ok());
  EXPECT_EQ(load.data.wal_seq, 7u);
  EXPECT_EQ(load.data.accepted, 4u);
  EXPECT_EQ(load.data.duplicate, 2u);
  EXPECT_EQ(load.data.corrupt, 3u);
  EXPECT_EQ(load.data.rejected, 1u);
  EXPECT_EQ(load.data.spec, kSpec);
  ASSERT_EQ(load.data.entries.size(), 4u);
  EXPECT_EQ(load.data.entries[0].user, 100u);
  EXPECT_EQ(load.data.entries[3].payload, "payload-7-3");
}

TEST(SnapshotTest, NoDirectoryMeansEmptyLoad) {
  FaultFs fs;
  const SnapshotLoad load = LoadLatestSnapshot(fs, kDir, kSpec).ValueOrDie();
  EXPECT_FALSE(load.loaded);
  EXPECT_EQ(load.quarantined, 0u);
}

TEST(SnapshotTest, NewestWins) {
  FaultFs fs;
  ASSERT_TRUE(fs.CreateDir(kDir).ok());
  ASSERT_TRUE(Write(fs, MakeData(5, 2)).ok());
  ASSERT_TRUE(Write(fs, MakeData(9, 6)).ok());
  const SnapshotLoad load = LoadLatestSnapshot(fs, kDir, kSpec).ValueOrDie();
  ASSERT_TRUE(load.loaded);
  EXPECT_EQ(load.data.wal_seq, 9u);
  EXPECT_EQ(load.data.entries.size(), 6u);
}

TEST(SnapshotTest, FlippedHeaderByteQuarantinesAndFallsBackToOlder) {
  FaultFs fs;
  ASSERT_TRUE(fs.CreateDir(kDir).ok());
  ASSERT_TRUE(Write(fs, MakeData(5, 2)).ok());
  ASSERT_TRUE(Write(fs, MakeData(9, 6)).ok());
  // Flip a byte in the newest snapshot's checksum field (header byte 8).
  const std::string newest = JoinPath(kDir, SnapshotFileName(9));
  const uint64_t size =
      fs.ReadFileToString(newest).ValueOrDie().size();
  fs.CorruptByte(newest, size - 9);

  const SnapshotLoad load = LoadLatestSnapshot(fs, kDir, kSpec).ValueOrDie();
  ASSERT_TRUE(load.loaded);
  EXPECT_EQ(load.data.wal_seq, 5u);  // older generation took over
  EXPECT_EQ(load.quarantined, 1u);
  EXPECT_FALSE(load.note.ok());
  // The corrupt file was renamed out of the scan, not deleted.
  EXPECT_FALSE(fs.FileExists(newest).ValueOrDie());
  EXPECT_TRUE(fs.FileExists(newest + ".quarantined").ValueOrDie());
}

TEST(SnapshotTest, CorruptOnlySnapshotFallsBackToEmpty) {
  FaultFs fs;
  ASSERT_TRUE(fs.CreateDir(kDir).ok());
  ASSERT_TRUE(Write(fs, MakeData(5, 2)).ok());
  fs.CorruptByte(JoinPath(kDir, SnapshotFileName(5)), 0);  // body tail
  const SnapshotLoad load = LoadLatestSnapshot(fs, kDir, kSpec).ValueOrDie();
  EXPECT_FALSE(load.loaded);  // caller degrades to full WAL replay
  EXPECT_EQ(load.quarantined, 1u);
  EXPECT_FALSE(load.note.ok());
}

TEST(SnapshotTest, SpecMismatchRefusesRecovery) {
  FaultFs fs;
  ASSERT_TRUE(fs.CreateDir(kDir).ok());
  ASSERT_TRUE(Write(fs, MakeData(5, 2)).ok());
  const auto load = LoadLatestSnapshot(fs, kDir, "some-other-spec");
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, TmpLeftoverIsInvisible) {
  FaultFs fs;
  ASSERT_TRUE(fs.CreateDir(kDir).ok());
  // A crash between .tmp write and rename leaves this file behind.
  auto tmp =
      fs.OpenAppend(JoinPath(kDir, SnapshotFileName(9) + ".tmp")).ValueOrDie();
  ASSERT_TRUE(tmp->Append("half-written garbage").ok());
  ASSERT_TRUE(Write(fs, MakeData(5, 2)).ok());
  const SnapshotLoad load = LoadLatestSnapshot(fs, kDir, kSpec).ValueOrDie();
  ASSERT_TRUE(load.loaded);
  EXPECT_EQ(load.data.wal_seq, 5u);
  EXPECT_EQ(load.quarantined, 0u);
}

TEST(SnapshotTest, RemoveSnapshotsBelowKeepsNewerGenerations) {
  FaultFs fs;
  ASSERT_TRUE(fs.CreateDir(kDir).ok());
  ASSERT_TRUE(Write(fs, MakeData(3, 1)).ok());
  ASSERT_TRUE(Write(fs, MakeData(5, 2)).ok());
  ASSERT_TRUE(Write(fs, MakeData(9, 3)).ok());
  ASSERT_TRUE(RemoveSnapshotsBelow(fs, kDir, 5).ok());
  EXPECT_FALSE(
      fs.FileExists(JoinPath(kDir, SnapshotFileName(3))).ValueOrDie());
  EXPECT_TRUE(
      fs.FileExists(JoinPath(kDir, SnapshotFileName(5))).ValueOrDie());
  EXPECT_TRUE(
      fs.FileExists(JoinPath(kDir, SnapshotFileName(9))).ValueOrDie());
}

}  // namespace
}  // namespace ldp
