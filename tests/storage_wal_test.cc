// WAL unit tests over the fault-injecting in-memory filesystem: append/scan
// roundtrips, torn-tail and corrupt-record detection, segment rotation,
// healed append retries after injected failures, ENOSPC, and retention
// deletes. Every degradation must be a typed Status plus the longest
// checksummed-valid prefix — never an abort, never silent loss.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/fault_fs.h"
#include "storage/wal.h"

namespace ldp {
namespace {

constexpr char kDir[] = "/wal";

WalOptions AlwaysSync() {
  WalOptions options;
  options.sync = WalSyncPolicy::kAlways;
  return options;
}

Status AppendOne(Wal* wal, uint64_t user, const std::string& bytes) {
  const WalFrameRef ref{user, bytes};
  return wal->Append(std::span<const WalFrameRef>(&ref, 1));
}

TEST(WalTest, EmptyDirectoryOpensAtSeqOne) {
  FaultFs fs;
  WalScan scan;
  auto wal = Wal::Open(&fs, kDir, AlwaysSync(), &scan).ValueOrDie();
  EXPECT_TRUE(scan.records.empty());
  EXPECT_TRUE(scan.tail.ok());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.next_seq, 1u);
  EXPECT_EQ(wal->next_seq(), 1u);
}

TEST(WalTest, RoundTripAcrossReopen) {
  FaultFs fs;
  {
    auto wal = Wal::Open(&fs, kDir, AlwaysSync(), nullptr).ValueOrDie();
    ASSERT_TRUE(AppendOne(wal.get(), 1, "alpha").ok());
    const std::string b = "bravo";
    const std::string c = "charlie";
    const WalFrameRef multi[] = {WalFrameRef{2, b}, WalFrameRef{3, c}};
    ASSERT_TRUE(wal->Append(multi).ok());
    EXPECT_EQ(wal->next_seq(), 3u);
  }
  WalScan scan;
  auto wal = Wal::Open(&fs, kDir, AlwaysSync(), &scan).ValueOrDie();
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_TRUE(scan.tail.ok());
  EXPECT_EQ(scan.records[0].seq, 1u);
  ASSERT_EQ(scan.records[0].frames.size(), 1u);
  EXPECT_EQ(scan.records[0].frames[0].user, 1u);
  EXPECT_EQ(scan.records[0].frames[0].bytes, "alpha");
  EXPECT_EQ(scan.records[1].seq, 2u);
  ASSERT_EQ(scan.records[1].frames.size(), 2u);
  EXPECT_EQ(scan.records[1].frames[0].user, 2u);
  EXPECT_EQ(scan.records[1].frames[1].user, 3u);
  EXPECT_EQ(scan.records[1].frames[1].bytes, "charlie");
  EXPECT_EQ(wal->next_seq(), 3u);
}

TEST(WalTest, TornTailAfterCrashDegradesToValidPrefix) {
  FaultFs fs;
  WalOptions options;
  options.sync = WalSyncPolicy::kNever;
  {
    auto wal = Wal::Open(&fs, kDir, options, nullptr).ValueOrDie();
    ASSERT_TRUE(AppendOne(wal.get(), 1, "one").ok());
    ASSERT_TRUE(AppendOne(wal.get(), 2, "two").ok());
    ASSERT_TRUE(wal->SyncNow().ok());  // records 1-2 reach the platter
    ASSERT_TRUE(AppendOne(wal.get(), 3, "three").ok());  // page cache only
  }
  fs.Reboot(FaultFs::TearMode::kTearUnsynced);  // half of record 3 survives

  WalScan scan;
  auto wal = Wal::Open(&fs, kDir, options, &scan).ValueOrDie();
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_FALSE(scan.tail.ok());
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_GT(scan.dropped_bytes, 0u);
  EXPECT_EQ(wal->next_seq(), 3u);  // seq 3 never committed; it is reused
  ASSERT_TRUE(AppendOne(wal.get(), 3, "three-retry").ok());
  ASSERT_TRUE(wal->SyncNow().ok());

  // The retried seq lands in a fresh segment and the scan heals across the
  // torn boundary: all three records, tail OK.
  WalScan healed;
  (void)Wal::Open(&fs, kDir, options, &healed).ValueOrDie();
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_TRUE(healed.tail.ok());
  EXPECT_EQ(healed.records[2].frames[0].bytes, "three-retry");
}

TEST(WalTest, DroppedUnsyncedTailIsCleanLoss) {
  FaultFs fs;
  WalOptions options;
  options.sync = WalSyncPolicy::kNever;
  {
    auto wal = Wal::Open(&fs, kDir, options, nullptr).ValueOrDie();
    ASSERT_TRUE(AppendOne(wal.get(), 1, "one").ok());
    ASSERT_TRUE(wal->SyncNow().ok());
    ASSERT_TRUE(AppendOne(wal.get(), 2, "two").ok());  // never synced
  }
  fs.Reboot(FaultFs::TearMode::kDropUnsynced);
  WalScan scan;
  (void)Wal::Open(&fs, kDir, options, &scan).ValueOrDie();
  // Record 2 vanished wholesale: the log simply ends after record 1.
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.tail.ok());
  EXPECT_FALSE(scan.torn_tail);
}

TEST(WalTest, CorruptRecordStopsScanWithTypedStatus) {
  FaultFs fs;
  std::string path;
  {
    auto wal = Wal::Open(&fs, kDir, AlwaysSync(), nullptr).ValueOrDie();
    ASSERT_TRUE(AppendOne(wal.get(), 1, "one").ok());
    ASSERT_TRUE(AppendOne(wal.get(), 2, "two").ok());
    ASSERT_TRUE(AppendOne(wal.get(), 3, "sixteen").ok());
  }
  // Flip a byte inside record 2's body. Records 2 and 3 carry 3- and
  // 7-byte payloads: record = 12 header + (8 seq + 4 count + 12 + len) body.
  const uint64_t record3_size = 12 + 24 + 7;
  fs.CorruptByte(JoinPath(kDir, "wal-0000000000000001.log"),
                 record3_size + 4);

  WalScan scan;
  auto wal = Wal::Open(&fs, kDir, AlwaysSync(), &scan).ValueOrDie();
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_FALSE(scan.tail.ok());
  EXPECT_FALSE(scan.torn_tail);  // checksum failure, not a short tail
  EXPECT_GT(scan.dropped_bytes, 0u);
  // The log still accepts new records (in a fresh segment at seq 2).
  ASSERT_TRUE(AppendOne(wal.get(), 2, "two-retry").ok());
  WalScan healed;
  (void)Wal::Open(&fs, kDir, AlwaysSync(), &healed).ValueOrDie();
  ASSERT_EQ(healed.records.size(), 2u);
  EXPECT_TRUE(healed.tail.ok());
  EXPECT_EQ(healed.records[1].frames[0].bytes, "two-retry");
}

TEST(WalTest, RotationSplitsSegmentsAndRetentionDeletesThem) {
  FaultFs fs;
  WalOptions options = AlwaysSync();
  options.segment_bytes = 1;  // every append rotates
  auto wal = Wal::Open(&fs, kDir, options, nullptr).ValueOrDie();
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(AppendOne(wal.get(), i, "payload").ok());
  }
  EXPECT_TRUE(fs.FileExists(JoinPath(kDir, "wal-0000000000000001.log"))
                  .ValueOrDie());
  ASSERT_TRUE(wal->DeleteSegmentsThrough(3).ok());
  EXPECT_FALSE(fs.FileExists(JoinPath(kDir, "wal-0000000000000001.log"))
                   .ValueOrDie());
  EXPECT_FALSE(fs.FileExists(JoinPath(kDir, "wal-0000000000000003.log"))
                   .ValueOrDie());
  WalScan scan;
  (void)Wal::Open(&fs, kDir, options, &scan).ValueOrDie();
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].seq, 4u);
  EXPECT_EQ(scan.records[1].seq, 5u);
  EXPECT_TRUE(scan.tail.ok());
}

TEST(WalTest, EnospcFailsTypedAndPreservesPrefix) {
  FaultFs::Options fault;
  fault.disk_budget_bytes = 200;
  FaultFs fs(fault);
  auto wal = Wal::Open(&fs, kDir, AlwaysSync(), nullptr).ValueOrDie();
  uint64_t committed = 0;
  Status first_failure = Status::OK();
  for (uint64_t i = 1; i <= 64; ++i) {
    const Status appended = AppendOne(wal.get(), i, "padding-padding");
    if (!appended.ok()) {
      first_failure = appended;
      break;
    }
    ++committed;
  }
  ASSERT_FALSE(first_failure.ok());
  EXPECT_EQ(first_failure.code(), StatusCode::kIoError);
  EXPECT_GT(committed, 0u);

  fs.Reboot(FaultFs::TearMode::kDropUnsynced);
  WalScan scan;
  (void)Wal::Open(&fs, kDir, AlwaysSync(), &scan).ValueOrDie();
  // Every committed (synced) record survives; the short-written one is
  // detected and set aside, never half-replayed.
  EXPECT_EQ(scan.records.size(), committed);
}

TEST(WalTest, InjectedShortWritesHealAcrossRetries) {
  FaultFs::Options fault;
  fault.short_write_every = 5;
  FaultFs fs(fault);
  auto wal = Wal::Open(&fs, kDir, AlwaysSync(), nullptr).ValueOrDie();
  uint64_t committed = 0;
  uint64_t failures = 0;
  while (committed < 8) {
    const Status appended =
        AppendOne(wal.get(), committed + 1, "frame-payload");
    if (appended.ok()) {
      ++committed;
    } else {
      ++failures;
      ASSERT_LT(failures, 64u) << "append never recovered";
    }
  }
  ASSERT_GT(failures, 0u);  // the fault actually fired
  WalScan scan;
  (void)Wal::Open(&fs, kDir, AlwaysSync(), &scan).ValueOrDie();
  ASSERT_EQ(scan.records.size(), 8u);
  EXPECT_TRUE(scan.tail.ok());  // every torn boundary healed by a retry
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1);
    EXPECT_EQ(scan.records[i].frames[0].user, i + 1);
  }
}

TEST(WalTest, SyncPolicyNameRoundTrip) {
  for (const WalSyncPolicy policy :
       {WalSyncPolicy::kNever, WalSyncPolicy::kBatch, WalSyncPolicy::kAlways}) {
    EXPECT_EQ(WalSyncPolicyFromString(WalSyncPolicyName(policy)).ValueOrDie(),
              policy);
  }
  EXPECT_FALSE(WalSyncPolicyFromString("sometimes").ok());
}

}  // namespace
}  // namespace ldp
