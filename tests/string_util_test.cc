#include "common/string_util.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, NoSeparator) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(CaseTest, ToLowerAndCompare) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").ValueOrDie(), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").ValueOrDie(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").ValueOrDie(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 7 ").ValueOrDie(), 7.0);
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

}  // namespace
}  // namespace ldp
