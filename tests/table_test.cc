#include "data/table.h"

#include <gtest/gtest.h>

namespace ldp {
namespace {

Schema SmallSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("d1", 8).ok());
  EXPECT_TRUE(schema.AddCategorical("d2", 3).ok());
  EXPECT_TRUE(schema.AddMeasure("m").ok());
  return schema;
}

TEST(TableTest, AppendAndRead) {
  Table table(SmallSchema());
  ASSERT_TRUE(table.AppendRow({3, 1}, {2.5}).ok());
  ASSERT_TRUE(table.AppendRow({7, 0}, {-1.0}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.DimValue(0, 0), 3u);
  EXPECT_EQ(table.DimValue(1, 1), 0u);
  EXPECT_DOUBLE_EQ(table.MeasureValue(2, 0), 2.5);
  EXPECT_DOUBLE_EQ(table.MeasureValue(2, 1), -1.0);
}

TEST(TableTest, AppendValidatesArity) {
  Table table(SmallSchema());
  EXPECT_FALSE(table.AppendRow({1}, {1.0}).ok());
  EXPECT_FALSE(table.AppendRow({1, 2}, {}).ok());
  EXPECT_FALSE(table.AppendRow({1, 2}, {1.0, 2.0}).ok());
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, AppendValidatesDomains) {
  Table table(SmallSchema());
  EXPECT_FALSE(table.AppendRow({8, 0}, {1.0}).ok());  // d1 out of range
  EXPECT_FALSE(table.AppendRow({0, 3}, {1.0}).ok());  // d2 out of range
  EXPECT_EQ(table.num_rows(), 0u);  // failed appends leave no partial rows
  EXPECT_TRUE(table.AppendRow({7, 2}, {1.0}).ok());   // boundary values OK
}

TEST(TableTest, FromColumns) {
  auto table = Table::FromColumns(SmallSchema(), {{1, 2, 3}, {0, 1, 2}},
                                  {{1.0, 2.0, 3.0}});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().num_rows(), 3u);
  EXPECT_EQ(table.value().DimColumn(0)[2], 3u);
  EXPECT_EQ(table.value().MeasureColumn(2)[1], 2.0);
}

TEST(TableTest, FromColumnsRejectsRagged) {
  EXPECT_FALSE(
      Table::FromColumns(SmallSchema(), {{1, 2}, {0}}, {{1.0, 2.0}}).ok());
  EXPECT_FALSE(
      Table::FromColumns(SmallSchema(), {{1, 2}, {0, 1}}, {{1.0}}).ok());
}

TEST(TableTest, FromColumnsRejectsWrongColumnCount) {
  EXPECT_FALSE(Table::FromColumns(SmallSchema(), {{1}}, {{1.0}}).ok());
}

TEST(TableTest, FromColumnsValidatesDomain) {
  EXPECT_FALSE(
      Table::FromColumns(SmallSchema(), {{1}, {5}}, {{1.0}}).ok());
}

TEST(TableTest, MeasureStatistics) {
  Table table(SmallSchema());
  ASSERT_TRUE(table.AppendRow({0, 0}, {3.0}).ok());
  ASSERT_TRUE(table.AppendRow({1, 1}, {-4.0}).ok());
  EXPECT_DOUBLE_EQ(table.MeasureSumOfSquares(2), 25.0);
  EXPECT_DOUBLE_EQ(table.MeasureMin(2), -4.0);
  EXPECT_DOUBLE_EQ(table.MeasureMax(2), 3.0);
}

TEST(TableTest, EmptyTableStatistics) {
  Table table(SmallSchema());
  EXPECT_DOUBLE_EQ(table.MeasureSumOfSquares(2), 0.0);
  EXPECT_DOUBLE_EQ(table.MeasureMin(2), 0.0);
  EXPECT_DOUBLE_EQ(table.MeasureMax(2), 0.0);
}

TEST(TableDeathTest, WrongColumnKindAborts) {
  Table table(SmallSchema());
  EXPECT_DEATH({ (void)table.DimColumn(2); }, "Check failed");
  EXPECT_DEATH({ (void)table.MeasureColumn(0); }, "Check failed");
}

}  // namespace
}  // namespace ldp
