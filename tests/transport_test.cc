#include "engine/transport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ldp {
namespace {

TEST(FaultRatesTest, ValidateRejectsOutOfRange) {
  EXPECT_TRUE(FaultRates{}.Validate().ok());
  FaultRates full;
  full.drop = full.dup = full.reorder = full.truncate = full.corrupt = 1.0;
  EXPECT_TRUE(full.Validate().ok());
  EXPECT_FALSE(FaultRates{.drop = -0.1}.Validate().ok());
  EXPECT_FALSE(FaultRates{.dup = 1.5}.Validate().ok());
  const auto r = FaultyChannel::Create(FaultRates{.corrupt = 2.0}, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultyChannelTest, PerfectChannelDeliversInOrder) {
  FaultyChannel channel = FaultyChannel::Create(FaultRates{}, 3).ValueOrDie();
  for (uint64_t u = 0; u < 100; ++u) {
    EXPECT_EQ(channel.Send(u, "payload-" + std::to_string(u)), 1);
  }
  EXPECT_EQ(channel.pending(), 100u);
  const auto deliveries = channel.Drain();
  ASSERT_EQ(deliveries.size(), 100u);
  for (uint64_t u = 0; u < 100; ++u) {
    EXPECT_EQ(deliveries[u].user, u);
    EXPECT_EQ(deliveries[u].bytes, "payload-" + std::to_string(u));
  }
  EXPECT_EQ(channel.pending(), 0u);
  EXPECT_EQ(channel.stats().delivered, 100u);
  EXPECT_EQ(channel.stats().dropped, 0u);
  EXPECT_EQ(channel.stats().corrupted, 0u);
}

TEST(FaultyChannelTest, DeterministicUnderSameSeed) {
  FaultRates rates;
  rates.drop = 0.2;
  rates.dup = 0.2;
  rates.reorder = 0.3;
  rates.truncate = 0.1;
  rates.corrupt = 0.2;
  auto run = [&rates](uint64_t seed) {
    FaultyChannel channel = FaultyChannel::Create(rates, seed).ValueOrDie();
    for (uint64_t u = 0; u < 500; ++u) {
      channel.Send(u, "the quick brown fox " + std::to_string(u));
    }
    return channel.Drain();
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
  // A different seed produces a different fault pattern.
  bool any_diff = c.size() != a.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].user != c[i].user || a[i].bytes != c[i].bytes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultyChannelTest, FaultRatesRoughlyHonored) {
  FaultRates rates;
  rates.drop = 0.25;
  FaultyChannel channel = FaultyChannel::Create(rates, 7).ValueOrDie();
  const uint64_t n = 20000;
  for (uint64_t u = 0; u < n; ++u) channel.Send(u, "x");
  const double observed =
      static_cast<double>(channel.stats().dropped) / static_cast<double>(n);
  EXPECT_NEAR(observed, 0.25, 0.02);
  EXPECT_EQ(channel.pending(), n - channel.stats().dropped);
}

TEST(FaultyChannelTest, DuplicationEnqueuesTwoCopies) {
  FaultRates rates;
  rates.dup = 1.0;
  FaultyChannel channel = FaultyChannel::Create(rates, 9).ValueOrDie();
  EXPECT_EQ(channel.Send(0, "hello"), 2);
  const auto deliveries = channel.Drain();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].bytes, "hello");
  EXPECT_EQ(deliveries[1].bytes, "hello");
}

TEST(FaultyChannelTest, CorruptionAlwaysChangesBytes) {
  FaultRates rates;
  rates.corrupt = 1.0;
  FaultyChannel channel = FaultyChannel::Create(rates, 11).ValueOrDie();
  const std::string original = "a fairly long report payload to mangle";
  for (int i = 0; i < 50; ++i) channel.Send(0, original);
  for (const auto& d : channel.Drain()) {
    EXPECT_NE(d.bytes, original);         // the flip is never a no-op
    EXPECT_EQ(d.bytes.size(), original.size());
  }
}

TEST(FaultyChannelTest, TruncationShortensBytes) {
  FaultRates rates;
  rates.truncate = 1.0;
  FaultyChannel channel = FaultyChannel::Create(rates, 13).ValueOrDie();
  const std::string original = "0123456789";
  for (int i = 0; i < 50; ++i) channel.Send(0, original);
  for (const auto& d : channel.Drain()) {
    EXPECT_LT(d.bytes.size(), original.size());  // strict prefix
    EXPECT_EQ(original.compare(0, d.bytes.size(), d.bytes), 0);
  }
}

TEST(RetryPolicyTest, ExponentialBackoffWithCap) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 500;
  EXPECT_EQ(policy.BackoffMs(1), 100u);
  EXPECT_EQ(policy.BackoffMs(2), 200u);
  EXPECT_EQ(policy.BackoffMs(3), 400u);
  EXPECT_EQ(policy.BackoffMs(4), 500u);  // capped
  EXPECT_EQ(policy.BackoffMs(10), 500u);
}

TEST(TransportClientTest, NoFaultsMeansOneAttemptNoBackoff) {
  FaultyChannel channel = FaultyChannel::Create(FaultRates{}, 17).ValueOrDie();
  SimulatedClock clock;
  TransportClient client(&channel, &clock, RetryPolicy{}, 18);
  for (uint64_t u = 0; u < 50; ++u) {
    EXPECT_EQ(client.SendWithRetry(u, "r"), 1);
  }
  EXPECT_EQ(client.stats().attempts, 50u);
  EXPECT_EQ(client.stats().acked, 50u);
  EXPECT_EQ(client.stats().gave_up, 0u);
  EXPECT_EQ(clock.now_ms(), 0u);
}

TEST(TransportClientTest, RetriesRecoverMostDropsAndAdvanceClock) {
  FaultRates rates;
  rates.drop = 0.3;
  FaultyChannel channel = FaultyChannel::Create(rates, 19).ValueOrDie();
  SimulatedClock clock;
  RetryPolicy policy;
  policy.max_attempts = 5;
  TransportClient client(&channel, &clock, policy, 20);
  const uint64_t n = 5000;
  for (uint64_t u = 0; u < n; ++u) client.SendWithRetry(u, "r");
  // P(attempt acked) = 0.7 * 0.7; P(all 5 unacked) = 0.51^5 ≈ 3.4%, so ~96%
  // of users are eventually acked, at the cost of simulated backoff time.
  EXPECT_GT(client.stats().acked, n * 94 / 100);
  EXPECT_GT(client.stats().attempts, n);  // retries happened
  EXPECT_GT(clock.now_ms(), 0u);
  EXPECT_EQ(client.stats().backoff_ms, clock.now_ms());
  // Unacked-but-delivered attempts put duplicate user frames in the queue.
  EXPECT_GT(channel.pending(), static_cast<size_t>(client.stats().acked));
}

TEST(TransportClientTest, GivesUpAfterMaxAttemptsOnDeadLink) {
  FaultRates rates;
  rates.drop = 1.0;
  FaultyChannel channel = FaultyChannel::Create(rates, 21).ValueOrDie();
  SimulatedClock clock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 10;
  policy.multiplier = 2.0;
  TransportClient client(&channel, &clock, policy, 22);
  EXPECT_EQ(client.SendWithRetry(0, "r"), 3);
  EXPECT_EQ(client.stats().gave_up, 1u);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(channel.pending(), 0u);
  EXPECT_EQ(clock.now_ms(), 10u + 20u);  // backoff after attempts 1 and 2
}

}  // namespace
}  // namespace ldp
