// Tests for Mechanism::VarianceBound: the bound must dominate the empirical
// MSE for every mechanism (conservative but sound), shrink with eps, and
// grow with the decomposition size.

#include <cmath>

#include <gtest/gtest.h>

#include "mech/factory.h"

namespace ldp {
namespace {

Schema TwoDimSchema(uint64_t m1, uint64_t m2) {
  Schema schema;
  EXPECT_TRUE(schema.AddOrdinal("a", m1).ok());
  EXPECT_TRUE(schema.AddOrdinal("b", m2).ok());
  EXPECT_TRUE(schema.AddMeasure("w").ok());
  return schema;
}

MechanismParams Params(double eps) {
  MechanismParams p;
  p.epsilon = eps;
  p.fanout = 2;
  p.hash_pool_size = 0;
  return p;
}

class VarianceBoundTest : public testing::TestWithParam<MechanismKind> {};

TEST_P(VarianceBoundTest, DominatesEmpiricalMse) {
  const MechanismKind kind = GetParam();
  const double eps = 1.0;
  const uint64_t n = 2000;
  const Schema schema = TwoDimSchema(16, 16);
  std::vector<std::vector<uint32_t>> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  Rng data_rng(1);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = {static_cast<uint32_t>(data_rng.UniformInt(16)),
                 static_cast<uint32_t>(data_rng.UniformInt(16))};
    weights[u] = 1.0 + static_cast<double>(u % 2);
    if (values[u][0] >= 3 && values[u][0] <= 12 && values[u][1] >= 1 &&
        values[u][1] <= 9) {
      truth += weights[u];
    }
  }
  const WeightVector w(weights);
  const std::vector<Interval> ranges = {{3, 12}, {1, 9}};

  const int runs = 25;
  Rng rng(2);
  double mse = 0.0;
  double bound = 0.0;
  for (int run = 0; run < runs; ++run) {
    auto mech = CreateMechanism(kind, schema, Params(eps)).ValueOrDie();
    for (uint64_t u = 0; u < n; ++u) {
      ASSERT_TRUE(mech->AddReport(mech->EncodeUser(values[u], rng), u).ok());
    }
    const double est = mech->EstimateBox(ranges, w).ValueOrDie();
    mse += (est - truth) * (est - truth);
    bound = mech->VarianceBound(ranges, w).ValueOrDie();
  }
  mse /= runs;
  EXPECT_GT(bound, 0.0);
  // The bound must dominate the empirical MSE (with slack for the MSE's own
  // sampling error at 25 runs).
  EXPECT_LT(mse, bound * 1.6) << MechanismKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, VarianceBoundTest,
                         testing::Values(MechanismKind::kHi,
                                         MechanismKind::kHio,
                                         MechanismKind::kSc,
                                         MechanismKind::kMg,
                                         MechanismKind::kQuadTree));

TEST(VarianceBoundShapeTest, ShrinksWithEpsilon) {
  const Schema schema = TwoDimSchema(16, 16);
  const WeightVector w = WeightVector::Ones(1000);
  const std::vector<Interval> ranges = {{3, 12}, {1, 9}};
  for (const MechanismKind kind :
       {MechanismKind::kHio, MechanismKind::kMg, MechanismKind::kSc}) {
    auto weak = CreateMechanism(kind, schema, Params(0.5)).ValueOrDie();
    auto strong = CreateMechanism(kind, schema, Params(4.0)).ValueOrDie();
    EXPECT_GT(weak->VarianceBound(ranges, w).ValueOrDie(),
              strong->VarianceBound(ranges, w).ValueOrDie())
        << MechanismKindName(kind);
  }
}

TEST(VarianceBoundShapeTest, MgGrowsWithBoxSize) {
  const Schema schema = TwoDimSchema(16, 16);
  auto mech =
      CreateMechanism(MechanismKind::kMg, schema, Params(1.0)).ValueOrDie();
  const WeightVector w = WeightVector::Ones(1000);
  const std::vector<Interval> small = {{0, 1}, {0, 1}};
  const std::vector<Interval> large = {{0, 11}, {0, 11}};
  EXPECT_GT(mech->VarianceBound(large, w).ValueOrDie(),
            mech->VarianceBound(small, w).ValueOrDie() * 10.0);
}

TEST(VarianceBoundShapeTest, ValidatesRanges) {
  const Schema schema = TwoDimSchema(16, 16);
  for (const MechanismKind kind :
       {MechanismKind::kHio, MechanismKind::kMg, MechanismKind::kSc,
        MechanismKind::kQuadTree}) {
    auto mech = CreateMechanism(kind, schema, Params(1.0)).ValueOrDie();
    const WeightVector w = WeightVector::Ones(0);
    const std::vector<Interval> wrong = {{0, 15}};
    EXPECT_FALSE(mech->VarianceBound(wrong, w).ok()) << MechanismKindName(kind);
  }
}

}  // namespace
}  // namespace ldp
