// Tests for the weighted frequency oracle (Section 3.2.2, Proposition 4) and
// the sampled estimator (Section 3.3, Proposition 5).

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/privacy_math.h"
#include "fo/olh.h"

namespace ldp {
namespace {

// The streaming weighted estimator must equal the paper's definition (eq. 8):
// partition users by measure value x and combine x * f̄_{S_x}(v).
TEST(WeightedOracleTest, StreamingEqualsGroupByMeasureDefinition) {
  const OlhProtocol proto(1.0, 16, 32);
  Rng rng(1);
  const uint64_t n = 500;
  std::vector<FoReport> reports(n);
  std::vector<uint64_t> values(n);
  std::vector<double> weights(n);
  OlhAccumulator all(proto);
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = u % 16;
    weights[u] = static_cast<double>(u % 4) * 25.0;  // measures in {0,25,50,75}
    reports[u] = proto.Encode(values[u], rng);
    all.Add(reports[u], u);
  }
  const WeightVector w(weights);

  // Group-by-measure construction: x * unweighted estimate within S_x.
  for (uint64_t v : {0ull, 7ull, 15ull}) {
    std::map<double, std::unique_ptr<OlhAccumulator>> groups;
    std::map<double, std::vector<uint64_t>> members;
    for (uint64_t u = 0; u < n; ++u) {
      auto& acc = groups[weights[u]];
      if (acc == nullptr) acc = std::make_unique<OlhAccumulator>(proto);
      acc->Add(reports[u], members[weights[u]].size());
      members[weights[u]].push_back(u);
    }
    double grouped = 0.0;
    for (auto& [x, acc] : groups) {
      grouped +=
          x * acc->EstimateWeighted(v, WeightVector::Ones(members[x].size()));
    }
    EXPECT_NEAR(all.EstimateWeighted(v, w), grouped, 1e-6) << "value " << v;
  }
}

// Proposition 4: unbiasedness and variance of the weighted estimator.
TEST(WeightedOracleTest, UnbiasedAndVarianceNearProp4) {
  const double eps = 1.0;
  const uint64_t n = 1200;
  const OlhProtocol proto(eps, 16, 0);
  Rng rng(2);

  // Fixed measures and values.
  std::vector<uint64_t> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  double m2_s = 0.0;
  double m2_s_v = 0.0;
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = u % 16;
    weights[u] = 1.0 + static_cast<double>(u % 10);
    m2_s += weights[u] * weights[u];
    if (values[u] == 5) {
      truth += weights[u];
      m2_s_v += weights[u] * weights[u];
    }
  }
  const WeightVector w(weights);

  const int runs = 150;
  double sum_est = 0.0;
  double sum_sq_err = 0.0;
  for (int run = 0; run < runs; ++run) {
    OlhAccumulator acc(proto);
    for (uint64_t u = 0; u < n; ++u) acc.Add(proto.Encode(values[u], rng), u);
    const double est = acc.EstimateWeighted(5, w);
    sum_est += est;
    sum_sq_err += (est - truth) * (est - truth);
  }
  const double theory_var = Prop4WeightedVariance(eps, m2_s, m2_s_v);
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(theory_var / runs));
  const double emp_var = sum_sq_err / runs;
  EXPECT_GT(emp_var, theory_var * 0.5);
  EXPECT_LT(emp_var, theory_var * 2.0);
  // And the bound of Prop. 4 dominates.
  EXPECT_LT(emp_var, Prop4WeightedVarianceBound(eps, m2_s) * 2.0);
}

// Additivity of errors (Prop. 4, last claim): Var[f̄(u) + f̄(v)] equals
// Var[f̄(u)] + Var[f̄(v)] — the covariance between two values vanishes.
TEST(WeightedOracleTest, ErrorsAreAdditiveAcrossValues) {
  const double eps = 1.0;
  const uint64_t n = 1000;
  const OlhProtocol proto(eps, 8, 0);
  Rng rng(3);
  std::vector<uint64_t> values(n);
  double truth_u = 0.0;
  double truth_v = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = i % 8;
    if (values[i] == 2) truth_u += 1.0;
    if (values[i] == 6) truth_v += 1.0;
  }
  const WeightVector w = WeightVector::Ones(n);
  const int runs = 200;
  double var_u = 0.0;
  double var_v = 0.0;
  double var_sum = 0.0;
  for (int run = 0; run < runs; ++run) {
    OlhAccumulator acc(proto);
    for (uint64_t i = 0; i < n; ++i) acc.Add(proto.Encode(values[i], rng), i);
    const double eu = acc.EstimateWeighted(2, w) - truth_u;
    const double ev = acc.EstimateWeighted(6, w) - truth_v;
    var_u += eu * eu;
    var_v += ev * ev;
    var_sum += (eu + ev) * (eu + ev);
  }
  var_u /= runs;
  var_v /= runs;
  var_sum /= runs;
  // Sum of variances within 35% of the variance of the sum.
  EXPECT_NEAR(var_sum / (var_u + var_v), 1.0, 0.35);
}

// Proposition 5: estimating from a 1/k random sample, scaled by k, stays
// unbiased, and the error matches the stated bound.
TEST(SampledOracleTest, UnbiasedAndVarianceNearProp5) {
  const double eps = 1.0;
  const uint64_t n = 2400;
  const int k = 4;
  const OlhProtocol proto(eps, 16, 0);
  Rng rng(4);

  std::vector<uint64_t> values(n);
  std::vector<double> weights(n);
  double truth = 0.0;
  double m2_s = 0.0;
  double m2_s_v = 0.0;
  for (uint64_t u = 0; u < n; ++u) {
    values[u] = u % 16;
    weights[u] = 1.0 + static_cast<double>(u % 5);
    m2_s += weights[u] * weights[u];
    if (values[u] == 9) {
      truth += weights[u];
      m2_s_v += weights[u] * weights[u];
    }
  }

  const int runs = 200;
  double sum_est = 0.0;
  double sum_sq_err = 0.0;
  for (int run = 0; run < runs; ++run) {
    // Random partition into k groups; the oracle runs on group 0 only.
    OlhAccumulator acc(proto);
    std::vector<double> sample_weights;
    for (uint64_t u = 0; u < n; ++u) {
      if (rng.UniformInt(k) == 0) {
        acc.Add(proto.Encode(values[u], rng),
                static_cast<uint64_t>(sample_weights.size()));
        sample_weights.push_back(weights[u]);
      }
    }
    const WeightVector w(sample_weights);
    const double est = static_cast<double>(k) * acc.EstimateWeighted(9, w);
    sum_est += est;
    sum_sq_err += (est - truth) * (est - truth);
  }
  const double theory_var = Prop5SampledVariance(eps, k, m2_s, m2_s_v);
  EXPECT_NEAR(sum_est / runs, truth, 4.0 * std::sqrt(theory_var / runs));
  const double emp_var = sum_sq_err / runs;
  EXPECT_GT(emp_var, theory_var * 0.4);
  EXPECT_LT(emp_var, theory_var * 2.2);
  EXPECT_LT(emp_var, Prop5SampledVarianceBound(eps, k, m2_s) * 2.2);
}

// Section 4.2's key claim in miniature: with the same total budget, spending
// full eps on a 1/k sample (HIO-style) beats splitting eps/k across k
// estimates (HI-style) once k is nontrivial.
TEST(SampledOracleTest, FullBudgetOnSampleBeatsSplitBudget) {
  const double eps = 1.0;
  const double m2 = 1000.0;
  const double k = 5.0;
  const double sampled = Prop5SampledVarianceBound(eps, k, m2);
  const double split = Prop4WeightedVarianceBound(eps / k, m2);
  EXPECT_LT(sampled, split);
}

}  // namespace
}  // namespace ldp
